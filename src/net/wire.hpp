#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "core/buffer.hpp"
#include "core/crc32c.hpp"
#include "core/wire.hpp"
#include "net/socket.hpp"

namespace dc::net {

/// Wire protocol of the distributed filter transport ("dcn"): every message
/// is one length-prefixed, checksummed frame over a TCP stream.
///
///   [FrameHeader (48 B)] [payload_bytes of payload]
///
/// Version 2 ("DCN2"). Changes from v1: both checksums are hardware-speed
/// CRC32C (core/crc32c.hpp) instead of FNV-1a, shrinking the header from
/// 56 to 48 bytes, and the payload is a refcounted core::Buffer so frames
/// share producer storage instead of copying it (the zero-copy data plane).
/// A v1 peer is rejected explicitly: its magic ("DCN1") maps to
/// WireError::kIncompatibleVersion, never to a checksum mystery.
///
/// Frame types mirror the in-process engine's control flow:
///
///   HELLO   connection handshake; `route.producer` carries the sender rank
///   DATA    one stream buffer; payload = buffer bytes, route addresses it
///   CREDIT  consumer dequeued one buffer (frees the producer's RR/WRR
///           in-flight window slot — the wire form of WriterState::on_dequeue)
///   ACK     demand-driven acknowledgment (WriterState::on_ack)
///   EOW     one producer copy finished the stream entering the target set
///   ABORT   UOW aborted on the sender; receivers unwind and propagate
///   DONE    sender's local workers joined for `route.uow` (completion
///           barrier; after DONE no further frames for that UOW follow).
///           Under fault tolerance the payload carries the sender's
///           observed-dead rank bitmask (8 bytes, little-endian), so the
///           barrier doubles as the membership-agreement exchange.
///   HEARTBEAT  idle-link liveness beacon. Every received frame counts as
///           a heartbeat (liveness piggybacks on the CREDIT / DONE plane);
///           explicit beacons flow only when a link has nothing else to say.
///
/// Integrity: the header carries a CRC32C over its own preceding bytes and
/// one over the payload; receivers verify both, enforce a hard
/// payload-size cap, and require per-connection sequence numbers to be
/// consecutive. Any violation is a WireError — the connection is closed and
/// the run terminates with a structured outcome, never a crash or a hang.
inline constexpr std::uint32_t kFrameMagic = 0x324E4344;    // "DCN2" LE
inline constexpr std::uint32_t kFrameMagicV1 = 0x314E4344;  // "DCN1" LE
inline constexpr std::uint32_t kMaxPayloadBytes = 64u * 1024u * 1024u;

enum class FrameType : std::uint8_t {
  kHello = 1,
  kData = 2,
  kCredit = 3,
  kAck = 4,
  kEow = 5,
  kAbort = 6,
  kDone = 7,
  kHeartbeat = 8,
};

[[nodiscard]] const char* to_string(FrameType t);

/// FNV-1a over a byte range — the v1 digest, kept for the format-migration
/// tests and any caller wanting a cheap dependency-free 64-bit hash. The
/// frame path itself now runs on core::crc32c.
[[nodiscard]] inline std::uint64_t fnv1a(std::span<const std::byte> bytes,
                                         std::uint64_t h = 0xcbf29ce484222325ULL) {
  for (std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Fixed-size frame header, little-endian PODs, memcpy'd onto the wire.
struct FrameHeader {
  std::uint32_t magic = kFrameMagic;
  std::uint8_t type = 0;
  std::uint8_t reserved[3] = {};
  core::BufferRoute route;          ///< buffer identity (kData/kCredit/...)
  std::uint32_t payload_bytes = 0;
  std::uint32_t payload_crc = 0;    ///< CRC32C over the payload
  std::uint64_t seq = 0;            ///< per-connection, consecutive from 0
  std::uint32_t reserved2 = 0;
  std::uint32_t header_crc = 0;     ///< CRC32C over all preceding fields

  [[nodiscard]] std::uint32_t compute_checksum() const {
    return core::crc32c({reinterpret_cast<const std::byte*>(this),
                         offsetof(FrameHeader, header_crc)});
  }
};
static_assert(std::is_trivially_copyable_v<FrameHeader>);
static_assert(sizeof(FrameHeader) == 48, "wire layout must not drift");

/// One frame. The payload is a refcounted core::Buffer: a DATA frame built
/// from a producer's stream buffer shares that buffer's storage (copying a
/// Frame bumps a refcount, it does not copy bytes), and a received frame's
/// payload lands directly in arena-leased storage the engine then adopts.
struct Frame {
  FrameHeader header;
  core::Buffer payload;

  [[nodiscard]] FrameType type() const {
    return static_cast<FrameType>(header.type);
  }
};

/// Everything that can go wrong reading one frame.
enum class WireError {
  kOk = 0,
  kClosed,           ///< orderly close on a frame boundary
  kTruncated,        ///< EOF mid-header or mid-payload
  kBadMagic,
  kIncompatibleVersion,  ///< recognizably a dcn frame, but wire version != 2
  kBadType,
  kBadHeaderChecksum,
  kOversizedPayload,  ///< payload_bytes > kMaxPayloadBytes
  kBadPayloadChecksum,
  kBadSeq,           ///< sequence number not consecutive
  kSocketError,
};

[[nodiscard]] const char* to_string(WireError e);

/// Builds an unsealed frame (seq/checksums filled in by seal_frame) that
/// shares `payload`'s storage — the zero-copy path for DATA.
[[nodiscard]] Frame make_frame(FrameType type, core::BufferRoute route = {},
                               core::Buffer payload = {});

/// Convenience for small control payloads built as plain vectors.
[[nodiscard]] Frame make_frame(FrameType type, core::BufferRoute route,
                               std::vector<std::byte> payload);

/// Assigns `seq` and computes both CRCs; after this the header bytes are
/// final and may be queued for a scatter-gather write.
void seal_frame(Frame& f, std::uint64_t seq);

/// Seals and writes header + payload as one scatter-gather send.
/// Returns false on socket error.
bool write_frame(Socket& s, Frame& f, std::uint64_t seq);

/// Seals `frames` with consecutive sequence numbers starting at
/// `first_seq` and writes them all with a single vectored send — the
/// small-frame coalescing path (ACK/CREDIT piggyback on the same syscall
/// as DATA). Returns false on socket error.
bool write_frames(Socket& s, std::span<Frame> frames, std::uint64_t first_seq);

/// Reads and validates one frame. `expected_seq` enforces the consecutive
/// sequence contract. The payload is read straight into storage leased
/// from core::BufferArena::global(). On any non-kOk result `out` is
/// unspecified.
[[nodiscard]] WireError read_frame(Socket& s, Frame& out,
                                   std::uint64_t expected_seq);

}  // namespace dc::net
