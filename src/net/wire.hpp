#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "core/wire.hpp"
#include "net/socket.hpp"

namespace dc::net {

/// Wire protocol of the distributed filter transport ("dcn"): every message
/// is one length-prefixed, checksummed frame over a TCP stream.
///
///   [FrameHeader (56 B)] [payload_bytes of payload]
///
/// Frame types mirror the in-process engine's control flow:
///
///   HELLO   connection handshake; `route.producer` carries the sender rank
///   DATA    one stream buffer; payload = buffer bytes, route addresses it
///   CREDIT  consumer dequeued one buffer (frees the producer's RR/WRR
///           in-flight window slot — the wire form of WriterState::on_dequeue)
///   ACK     demand-driven acknowledgment (WriterState::on_ack)
///   EOW     one producer copy finished the stream entering the target set
///   ABORT   UOW aborted on the sender; receivers unwind and propagate
///   DONE    sender's local workers joined for `route.uow` (completion
///           barrier; after DONE no further frames for that UOW follow).
///           Under fault tolerance the payload carries the sender's
///           observed-dead rank bitmask (8 bytes, little-endian), so the
///           barrier doubles as the membership-agreement exchange.
///   HEARTBEAT  idle-link liveness beacon. Every received frame counts as
///           a heartbeat (liveness piggybacks on the CREDIT / DONE plane);
///           explicit beacons flow only when a link has nothing else to say.
///
/// Integrity: the header carries an FNV-1a checksum over its own preceding
/// bytes and one over the payload; receivers verify both, enforce a hard
/// payload-size cap, and require per-connection sequence numbers to be
/// consecutive. Any violation is a WireError — the connection is closed and
/// the run terminates with a structured outcome, never a crash or a hang.
inline constexpr std::uint32_t kFrameMagic = 0x314E4344;  // "DCN1" LE
inline constexpr std::uint32_t kMaxPayloadBytes = 64u * 1024u * 1024u;

enum class FrameType : std::uint8_t {
  kHello = 1,
  kData = 2,
  kCredit = 3,
  kAck = 4,
  kEow = 5,
  kAbort = 6,
  kDone = 7,
  kHeartbeat = 8,
};

[[nodiscard]] const char* to_string(FrameType t);

/// FNV-1a over a byte range (same digest primitive as io::format and
/// viz::Image — kept dependency-free here).
[[nodiscard]] inline std::uint64_t fnv1a(std::span<const std::byte> bytes,
                                         std::uint64_t h = 0xcbf29ce484222325ULL) {
  for (std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Fixed-size frame header, little-endian PODs, memcpy'd onto the wire.
struct FrameHeader {
  std::uint32_t magic = kFrameMagic;
  std::uint8_t type = 0;
  std::uint8_t reserved[3] = {};
  core::BufferRoute route;             ///< buffer identity (kData/kCredit/...)
  std::uint32_t payload_bytes = 0;
  std::uint32_t reserved2 = 0;
  std::uint64_t seq = 0;               ///< per-connection, consecutive from 0
  std::uint64_t payload_checksum = 0;  ///< fnv1a over the payload
  std::uint64_t header_checksum = 0;   ///< fnv1a over all preceding fields

  [[nodiscard]] std::uint64_t compute_checksum() const {
    return fnv1a({reinterpret_cast<const std::byte*>(this),
                  offsetof(FrameHeader, header_checksum)});
  }
};
static_assert(std::is_trivially_copyable_v<FrameHeader>);
static_assert(sizeof(FrameHeader) == 56, "wire layout must not drift");

struct Frame {
  FrameHeader header;
  std::vector<std::byte> payload;

  [[nodiscard]] FrameType type() const {
    return static_cast<FrameType>(header.type);
  }
};

/// Everything that can go wrong reading one frame.
enum class WireError {
  kOk = 0,
  kClosed,           ///< orderly close on a frame boundary
  kTruncated,        ///< EOF mid-header or mid-payload
  kBadMagic,
  kBadType,
  kBadHeaderChecksum,
  kOversizedPayload,  ///< payload_bytes > kMaxPayloadBytes
  kBadPayloadChecksum,
  kBadSeq,           ///< sequence number not consecutive
  kSocketError,
};

[[nodiscard]] const char* to_string(WireError e);

/// Builds an unsealed frame (seq/checksums filled in by write_frame).
[[nodiscard]] Frame make_frame(FrameType type, core::BufferRoute route = {},
                               std::vector<std::byte> payload = {});

/// Assigns `seq`, computes both checksums, and writes header + payload.
/// Returns false on socket error.
bool write_frame(Socket& s, Frame& f, std::uint64_t seq);

/// Reads and validates one frame. `expected_seq` enforces the consecutive
/// sequence contract. On any non-kOk result `out` is unspecified.
[[nodiscard]] WireError read_frame(Socket& s, Frame& out,
                                   std::uint64_t expected_seq);

}  // namespace dc::net
