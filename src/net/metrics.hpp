#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace dc::obs {
class MetricsRegistry;
}

namespace dc::net {

/// Transport-level counters of one process's DistributedEngine: frames and
/// bytes by direction, per-type frame counts, and producer-side credit
/// stalls (dispatches that had to wait for a window slot freed by a CREDIT
/// or ACK frame). Counters are atomics — the send / recv threads and every
/// worker thread bump them concurrently; snapshot() flattens them for the
/// registry export.
struct NetMetrics {
  std::atomic<std::uint64_t> frames_sent{0};
  std::atomic<std::uint64_t> frames_recv{0};
  std::atomic<std::uint64_t> bytes_sent{0};
  std::atomic<std::uint64_t> bytes_recv{0};
  std::atomic<std::uint64_t> data_sent{0};
  std::atomic<std::uint64_t> data_recv{0};
  std::atomic<std::uint64_t> credits_sent{0};
  std::atomic<std::uint64_t> credits_recv{0};
  std::atomic<std::uint64_t> acks_sent{0};
  std::atomic<std::uint64_t> acks_recv{0};
  std::atomic<std::uint64_t> eows_sent{0};
  std::atomic<std::uint64_t> eows_recv{0};
  std::atomic<std::uint64_t> aborts_sent{0};
  std::atomic<std::uint64_t> aborts_recv{0};
  std::atomic<std::uint64_t> heartbeats_sent{0};
  std::atomic<std::uint64_t> heartbeats_recv{0};
  std::atomic<std::uint64_t> credit_stalls{0};
  /// Microseconds producers spent blocked waiting for remote credit.
  std::atomic<std::uint64_t> credit_stall_us{0};
  std::atomic<std::uint64_t> protocol_errors{0};
};

/// Plain-value snapshot of NetMetrics (copyable, serializable).
struct NetMetricsSnapshot {
  std::uint64_t frames_sent = 0, frames_recv = 0;
  std::uint64_t bytes_sent = 0, bytes_recv = 0;
  std::uint64_t data_sent = 0, data_recv = 0;
  std::uint64_t credits_sent = 0, credits_recv = 0;
  std::uint64_t acks_sent = 0, acks_recv = 0;
  std::uint64_t eows_sent = 0, eows_recv = 0;
  std::uint64_t aborts_sent = 0, aborts_recv = 0;
  std::uint64_t heartbeats_sent = 0, heartbeats_recv = 0;
  std::uint64_t credit_stalls = 0, credit_stall_us = 0;
  std::uint64_t protocol_errors = 0;

  NetMetricsSnapshot& operator+=(const NetMetricsSnapshot& o);
};

[[nodiscard]] NetMetricsSnapshot snapshot(const NetMetrics& m);

/// Publishes a snapshot into the unified registry under `<prefix>.` names —
/// the transport counterpart of core::publish / exec::publish / io::publish.
void publish(const NetMetricsSnapshot& m, obs::MetricsRegistry& reg,
             const std::string& prefix = "net");

}  // namespace dc::net
