#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace dc::obs {
class MetricsRegistry;
}

namespace dc::net {

/// Transport-level counters of one process's DistributedEngine: frames and
/// bytes by direction, per-type frame counts, and producer-side credit
/// stalls (dispatches that had to wait for a window slot freed by a CREDIT
/// or ACK frame). Counters are atomics — the send / recv threads and every
/// worker thread bump them concurrently; snapshot() flattens them for the
/// registry export.
struct NetMetrics {
  std::atomic<std::uint64_t> frames_sent{0};
  std::atomic<std::uint64_t> frames_recv{0};
  std::atomic<std::uint64_t> bytes_sent{0};
  std::atomic<std::uint64_t> bytes_recv{0};
  std::atomic<std::uint64_t> data_sent{0};
  std::atomic<std::uint64_t> data_recv{0};
  std::atomic<std::uint64_t> credits_sent{0};
  std::atomic<std::uint64_t> credits_recv{0};
  std::atomic<std::uint64_t> acks_sent{0};
  std::atomic<std::uint64_t> acks_recv{0};
  std::atomic<std::uint64_t> eows_sent{0};
  std::atomic<std::uint64_t> eows_recv{0};
  std::atomic<std::uint64_t> aborts_sent{0};
  std::atomic<std::uint64_t> aborts_recv{0};
  std::atomic<std::uint64_t> heartbeats_sent{0};
  std::atomic<std::uint64_t> heartbeats_recv{0};
  /// Scatter-gather writes issued; frames_sent / send_batches is the mean
  /// coalescing factor (>1 whenever ACK/CREDIT piggybacked on DATA).
  std::atomic<std::uint64_t> send_batches{0};
  std::atomic<std::uint64_t> credit_stalls{0};
  /// Microseconds producers spent blocked waiting for remote credit.
  std::atomic<std::uint64_t> credit_stall_us{0};
  /// Log2 histogram of individual stall durations: bucket i counts stalls
  /// in [2^i, 2^(i+1)) µs (bucket 0: < 2 µs). Coarse by design — it exists
  /// so the bench can report tail latency (p99) without tracing overhead.
  static constexpr int kStallBuckets = 24;
  std::array<std::atomic<std::uint64_t>, kStallBuckets> credit_stall_hist{};
  std::atomic<std::uint64_t> protocol_errors{0};

  /// Books one stall of `us` microseconds (count + total + histogram).
  void record_credit_stall(std::uint64_t us);
};

/// Plain-value snapshot of NetMetrics (copyable, serializable).
struct NetMetricsSnapshot {
  std::uint64_t frames_sent = 0, frames_recv = 0;
  std::uint64_t bytes_sent = 0, bytes_recv = 0;
  std::uint64_t data_sent = 0, data_recv = 0;
  std::uint64_t credits_sent = 0, credits_recv = 0;
  std::uint64_t acks_sent = 0, acks_recv = 0;
  std::uint64_t eows_sent = 0, eows_recv = 0;
  std::uint64_t aborts_sent = 0, aborts_recv = 0;
  std::uint64_t heartbeats_sent = 0, heartbeats_recv = 0;
  std::uint64_t send_batches = 0;
  std::uint64_t credit_stalls = 0, credit_stall_us = 0;
  std::array<std::uint64_t, NetMetrics::kStallBuckets> credit_stall_hist{};
  std::uint64_t protocol_errors = 0;

  NetMetricsSnapshot& operator+=(const NetMetricsSnapshot& o);

  /// Upper bound (µs) of the bucket holding the p-th percentile stall, 0
  /// when no stalls were recorded. p in (0, 1]; p99 = stall_percentile(.99).
  [[nodiscard]] std::uint64_t stall_percentile_us(double p) const;
};

[[nodiscard]] NetMetricsSnapshot snapshot(const NetMetrics& m);

/// Publishes a snapshot into the unified registry under `<prefix>.` names —
/// the transport counterpart of core::publish / exec::publish / io::publish.
void publish(const NetMetricsSnapshot& m, obs::MetricsRegistry& reg,
             const std::string& prefix = "net");

}  // namespace dc::net
