#include "net/metrics.hpp"

#include "obs/metrics.hpp"

namespace dc::net {

NetMetricsSnapshot& NetMetricsSnapshot::operator+=(const NetMetricsSnapshot& o) {
  frames_sent += o.frames_sent;
  frames_recv += o.frames_recv;
  bytes_sent += o.bytes_sent;
  bytes_recv += o.bytes_recv;
  data_sent += o.data_sent;
  data_recv += o.data_recv;
  credits_sent += o.credits_sent;
  credits_recv += o.credits_recv;
  acks_sent += o.acks_sent;
  acks_recv += o.acks_recv;
  eows_sent += o.eows_sent;
  eows_recv += o.eows_recv;
  aborts_sent += o.aborts_sent;
  aborts_recv += o.aborts_recv;
  heartbeats_sent += o.heartbeats_sent;
  heartbeats_recv += o.heartbeats_recv;
  credit_stalls += o.credit_stalls;
  credit_stall_us += o.credit_stall_us;
  protocol_errors += o.protocol_errors;
  return *this;
}

NetMetricsSnapshot snapshot(const NetMetrics& m) {
  NetMetricsSnapshot s;
  const auto get = [](const std::atomic<std::uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  s.frames_sent = get(m.frames_sent);
  s.frames_recv = get(m.frames_recv);
  s.bytes_sent = get(m.bytes_sent);
  s.bytes_recv = get(m.bytes_recv);
  s.data_sent = get(m.data_sent);
  s.data_recv = get(m.data_recv);
  s.credits_sent = get(m.credits_sent);
  s.credits_recv = get(m.credits_recv);
  s.acks_sent = get(m.acks_sent);
  s.acks_recv = get(m.acks_recv);
  s.eows_sent = get(m.eows_sent);
  s.eows_recv = get(m.eows_recv);
  s.aborts_sent = get(m.aborts_sent);
  s.aborts_recv = get(m.aborts_recv);
  s.heartbeats_sent = get(m.heartbeats_sent);
  s.heartbeats_recv = get(m.heartbeats_recv);
  s.credit_stalls = get(m.credit_stalls);
  s.credit_stall_us = get(m.credit_stall_us);
  s.protocol_errors = get(m.protocol_errors);
  return s;
}

void publish(const NetMetricsSnapshot& m, obs::MetricsRegistry& reg,
             const std::string& prefix) {
  const auto key = [&](const char* name) { return prefix + "." + name; };
  reg.set(key("frames_sent"), m.frames_sent);
  reg.set(key("frames_recv"), m.frames_recv);
  reg.set(key("bytes_sent"), m.bytes_sent);
  reg.set(key("bytes_recv"), m.bytes_recv);
  reg.set(key("data_sent"), m.data_sent);
  reg.set(key("data_recv"), m.data_recv);
  reg.set(key("credits_sent"), m.credits_sent);
  reg.set(key("credits_recv"), m.credits_recv);
  reg.set(key("acks_sent"), m.acks_sent);
  reg.set(key("acks_recv"), m.acks_recv);
  reg.set(key("eows_sent"), m.eows_sent);
  reg.set(key("eows_recv"), m.eows_recv);
  reg.set(key("aborts_sent"), m.aborts_sent);
  reg.set(key("aborts_recv"), m.aborts_recv);
  reg.set(key("heartbeats_sent"), m.heartbeats_sent);
  reg.set(key("heartbeats_recv"), m.heartbeats_recv);
  reg.set(key("credit_stalls"), m.credit_stalls);
  reg.set(key("credit_stall_time"),
          static_cast<double>(m.credit_stall_us) / 1e6);
  reg.set(key("protocol_errors"), m.protocol_errors);
}

}  // namespace dc::net
