#include "net/metrics.hpp"

#include <algorithm>
#include <bit>

#include "obs/metrics.hpp"

namespace dc::net {

void NetMetrics::record_credit_stall(std::uint64_t us) {
  credit_stalls.fetch_add(1, std::memory_order_relaxed);
  credit_stall_us.fetch_add(us, std::memory_order_relaxed);
  const int bucket =
      us < 2 ? 0
             : std::min<int>(kStallBuckets - 1,
                             std::bit_width(us) - 1);  // floor(log2(us))
  credit_stall_hist[static_cast<std::size_t>(bucket)].fetch_add(
      1, std::memory_order_relaxed);
}

std::uint64_t NetMetricsSnapshot::stall_percentile_us(double p) const {
  std::uint64_t total = 0;
  for (const std::uint64_t c : credit_stall_hist) total += c;
  if (total == 0) return 0;
  const std::uint64_t rank = static_cast<std::uint64_t>(
      p * static_cast<double>(total) + 0.5);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < credit_stall_hist.size(); ++i) {
    seen += credit_stall_hist[i];
    if (seen >= rank) return 1ULL << (i + 1);  // bucket upper bound
  }
  return 1ULL << credit_stall_hist.size();
}

NetMetricsSnapshot& NetMetricsSnapshot::operator+=(const NetMetricsSnapshot& o) {
  frames_sent += o.frames_sent;
  frames_recv += o.frames_recv;
  bytes_sent += o.bytes_sent;
  bytes_recv += o.bytes_recv;
  data_sent += o.data_sent;
  data_recv += o.data_recv;
  credits_sent += o.credits_sent;
  credits_recv += o.credits_recv;
  acks_sent += o.acks_sent;
  acks_recv += o.acks_recv;
  eows_sent += o.eows_sent;
  eows_recv += o.eows_recv;
  aborts_sent += o.aborts_sent;
  aborts_recv += o.aborts_recv;
  heartbeats_sent += o.heartbeats_sent;
  heartbeats_recv += o.heartbeats_recv;
  send_batches += o.send_batches;
  credit_stalls += o.credit_stalls;
  credit_stall_us += o.credit_stall_us;
  for (std::size_t i = 0; i < credit_stall_hist.size(); ++i) {
    credit_stall_hist[i] += o.credit_stall_hist[i];
  }
  protocol_errors += o.protocol_errors;
  return *this;
}

NetMetricsSnapshot snapshot(const NetMetrics& m) {
  NetMetricsSnapshot s;
  const auto get = [](const std::atomic<std::uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  s.frames_sent = get(m.frames_sent);
  s.frames_recv = get(m.frames_recv);
  s.bytes_sent = get(m.bytes_sent);
  s.bytes_recv = get(m.bytes_recv);
  s.data_sent = get(m.data_sent);
  s.data_recv = get(m.data_recv);
  s.credits_sent = get(m.credits_sent);
  s.credits_recv = get(m.credits_recv);
  s.acks_sent = get(m.acks_sent);
  s.acks_recv = get(m.acks_recv);
  s.eows_sent = get(m.eows_sent);
  s.eows_recv = get(m.eows_recv);
  s.aborts_sent = get(m.aborts_sent);
  s.aborts_recv = get(m.aborts_recv);
  s.heartbeats_sent = get(m.heartbeats_sent);
  s.heartbeats_recv = get(m.heartbeats_recv);
  s.send_batches = get(m.send_batches);
  s.credit_stalls = get(m.credit_stalls);
  s.credit_stall_us = get(m.credit_stall_us);
  for (std::size_t i = 0; i < s.credit_stall_hist.size(); ++i) {
    s.credit_stall_hist[i] = get(m.credit_stall_hist[i]);
  }
  s.protocol_errors = get(m.protocol_errors);
  return s;
}

void publish(const NetMetricsSnapshot& m, obs::MetricsRegistry& reg,
             const std::string& prefix) {
  const auto key = [&](const char* name) { return prefix + "." + name; };
  reg.set(key("frames_sent"), m.frames_sent);
  reg.set(key("frames_recv"), m.frames_recv);
  reg.set(key("bytes_sent"), m.bytes_sent);
  reg.set(key("bytes_recv"), m.bytes_recv);
  reg.set(key("data_sent"), m.data_sent);
  reg.set(key("data_recv"), m.data_recv);
  reg.set(key("credits_sent"), m.credits_sent);
  reg.set(key("credits_recv"), m.credits_recv);
  reg.set(key("acks_sent"), m.acks_sent);
  reg.set(key("acks_recv"), m.acks_recv);
  reg.set(key("eows_sent"), m.eows_sent);
  reg.set(key("eows_recv"), m.eows_recv);
  reg.set(key("aborts_sent"), m.aborts_sent);
  reg.set(key("aborts_recv"), m.aborts_recv);
  reg.set(key("heartbeats_sent"), m.heartbeats_sent);
  reg.set(key("heartbeats_recv"), m.heartbeats_recv);
  reg.set(key("send_batches"), m.send_batches);
  reg.set(key("credit_stalls"), m.credit_stalls);
  reg.set(key("credit_stall_time"),
          static_cast<double>(m.credit_stall_us) / 1e6);
  reg.set(key("credit_stall_p99_us"),
          static_cast<std::int64_t>(m.stall_percentile_us(0.99)));
  reg.set(key("protocol_errors"), m.protocol_errors);
}

}  // namespace dc::net
