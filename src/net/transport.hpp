#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/metrics.hpp"
#include "net/process.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "obs/recorder.hpp"

namespace dc::net {

/// One TCP connection to a peer rank, pumped by a dedicated send thread and
/// a dedicated recv thread.
///
/// The send side is a bounded outbox drained in coalesced batches: the
/// pump seals up to a batch of queued frames with consecutive sequence
/// numbers and hands them to the kernel in ONE scatter-gather sendmsg
/// (header iovec + payload iovec per frame), so small control frames
/// (ACK/CREDIT) piggyback on the syscall a DATA frame was paying for
/// anyway, and payload bytes are never staged through an intermediate
/// buffer. send() of a DATA frame blocks while the outbox is at capacity
/// (set_outbox_capacity: the engine bounds it at producers × window plus
/// control-frame headroom), so a wedged peer back-pressures producers
/// instead of growing memory without bound. Control frames always enqueue
/// without blocking — they are what un-wedges the credit loop, and the
/// recv threads that emit them must never block on the wire. The recv side
/// parses and validates frames and hands them to the engine's handler on
/// the recv thread; the handler must not block on the network (it may push
/// into consumer channels, which the engine sizes so those pushes never
/// block either — that is what makes the credit loop deadlock-free).
///
/// Any failure — a wire error on the recv side (checksum, truncation,
/// sequence gap, unexpected close) or a write failure on the send side —
/// fires the error handler exactly once (a guard shared by both pumps,
/// whichever notices first) and stops that pump; the engine turns the
/// report into a structured transport-error outcome. Failures observed
/// while stop() is tearing the link down are not reported.
class PeerLink {
 public:
  using FrameHandler = std::function<void(int peer, const Frame&)>;
  /// `err` is kClosed for an orderly close; anything else is a violation.
  using ErrorHandler =
      std::function<void(int peer, WireError err, const std::string& detail)>;

  PeerLink(int my_rank, int peer_rank, Socket socket, NetMetrics* metrics,
           obs::TraceSession* obs);
  ~PeerLink();

  PeerLink(const PeerLink&) = delete;
  PeerLink& operator=(const PeerLink&) = delete;

  /// Starts the pump threads. Frames sent before start() are flushed first.
  void start(FrameHandler on_frame, ErrorHandler on_error);

  /// Arms idle-link heartbeats (call before start()): whenever the outbox
  /// stays empty for `interval_s`, the send pump emits one HEARTBEAT frame.
  /// Liveness otherwise piggybacks on regular traffic — every received
  /// frame counts — so beacons flow only on links with nothing else to say.
  void enable_heartbeat(double interval_s);

  /// Bounds the outbox (call before start()). DATA sends block while the
  /// queue holds `capacity` frames; control frames are exempt. The engine
  /// sets capacity = producers × window + control headroom, making queued
  /// memory proportional to the credit windows, not to producer speed.
  /// Default: unbounded (raw-transport tests and the HELLO path).
  void set_outbox_capacity(std::size_t capacity);

  /// Enqueues one frame for transmission (thread-safe). Non-blocking for
  /// control frames; a DATA frame waits for outbox space (back-pressure).
  void send(Frame f);

  /// Blocks until every frame enqueued before this call has been handed to
  /// the kernel (outbox drained, in-progress write finished), the link
  /// failed, or `timeout_s` elapsed. Returns true when the flush completed.
  /// Once written, delivery is ordered ahead of any later socket close even
  /// if this process is SIGKILLed — the fence that makes kill-at-UOW-entry
  /// fault injection deterministic for the previous UOW's control frames.
  bool wait_flushed(double timeout_s);

  /// Flushes the outbox (bounded by kStopFlushDeadline — a live peer that
  /// stopped reading must not wedge teardown), closes the socket, joins
  /// both threads. Idempotent. `flush` false skips draining (abort paths:
  /// get out fast).
  void stop(bool flush = true);

  [[nodiscard]] int peer() const { return peer_; }

  /// How long stop(flush=true) waits for the send pump to drain the outbox
  /// before shutting the socket down under it.
  static constexpr std::chrono::seconds kStopFlushDeadline{5};

  /// Most frames one scatter-gather sendmsg carries (2 iovecs per frame;
  /// comfortably under IOV_MAX while keeping per-call latency flat).
  static constexpr std::size_t kMaxCoalescedFrames = 16;

 private:
  void send_main();
  void pump_send();
  void recv_main();
  /// Fires on_error_ at most once per link (both pumps funnel through it).
  void report_error(WireError err, const std::string& detail);

  int me_;
  int peer_;
  Socket socket_;
  NetMetrics* metrics_;
  obs::TraceSession* obs_;
  obs::Track* send_track_ = nullptr;  ///< "net:r<me>->r<peer>"
  obs::Track* recv_track_ = nullptr;  ///< "net:r<me><-r<peer>"

  FrameHandler on_frame_;
  ErrorHandler on_error_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Frame> outbox_;
  std::size_t outbox_capacity_ = SIZE_MAX;  ///< DATA back-pressure bound
  bool stopping_ = false;
  bool flush_on_stop_ = true;
  bool send_failed_ = false;  ///< write error: the outbox is dead, drop sends
  bool sender_done_ = false;  ///< send pump exited (outbox flushed or failed)
  int pending_writes_ = 0;    ///< enqueued frames not yet written to the fd
  std::chrono::nanoseconds heartbeat_interval_{0};  ///< 0 = disabled
  std::atomic<bool> error_reported_{false};

  std::uint64_t send_seq_ = 1;  ///< seq 0 was the HELLO handshake
  std::thread send_thread_;
  std::thread recv_thread_;
};

/// Establishes the full localhost mesh for `env.rank`: connects to every
/// lower rank (sending a HELLO carrying our rank, wire seq 0) and accepts
/// one connection from every higher rank (validating its HELLO). Returns
/// sockets indexed by peer rank (the slot at env.rank stays invalid).
/// Throws std::runtime_error on timeout or a bad handshake.
[[nodiscard]] std::vector<Socket> connect_mesh(RankEnv& env,
                                               double timeout_s = 30.0);

}  // namespace dc::net
