#include "net/transport.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace dc::net {

PeerLink::PeerLink(int my_rank, int peer_rank, Socket socket,
                   NetMetrics* metrics, obs::TraceSession* obs)
    : me_(my_rank),
      peer_(peer_rank),
      socket_(std::move(socket)),
      metrics_(metrics),
      obs_(obs) {
  if (obs_ != nullptr) {
    const std::string m = std::to_string(me_), p = std::to_string(peer_);
    send_track_ = &obs_->track("net:r" + m + "->r" + p);
    recv_track_ = &obs_->track("net:r" + m + "<-r" + p);
  }
}

PeerLink::~PeerLink() { stop(false); }

void PeerLink::start(FrameHandler on_frame, ErrorHandler on_error) {
  on_frame_ = std::move(on_frame);
  on_error_ = std::move(on_error);
  send_thread_ = std::thread([this] { send_main(); });
  recv_thread_ = std::thread([this] { recv_main(); });
}

void PeerLink::enable_heartbeat(double interval_s) {
  std::lock_guard<std::mutex> lk(mu_);
  heartbeat_interval_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double>(interval_s));
}

void PeerLink::set_outbox_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lk(mu_);
  outbox_capacity_ = capacity == 0 ? 1 : capacity;
}

void PeerLink::send(Frame f) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (f.type() == FrameType::kData) {
      // Back-pressure: a wedged peer stalls producers here instead of
      // growing the outbox without bound. Control frames skip this wait —
      // they are emitted by recv threads and are what frees the windows.
      cv_.wait(lk, [this] {
        return outbox_.size() < outbox_capacity_ || stopping_ || send_failed_;
      });
    }
    // Teardown / dead-link races are benign: the frame is moot either way
    // (and a dead link must not accumulate an outbox nobody will drain).
    if (stopping_ || send_failed_) return;
    outbox_.push_back(std::move(f));
    ++pending_writes_;
  }
  cv_.notify_all();
}

bool PeerLink::wait_flushed(double timeout_s) {
  std::unique_lock<std::mutex> lk(mu_);
  return cv_.wait_for(lk, std::chrono::duration<double>(timeout_s), [this] {
    return pending_writes_ == 0 || stopping_ || send_failed_;
  });
}

void PeerLink::stop(bool flush) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_ && !send_thread_.joinable() && !recv_thread_.joinable()) {
      return;
    }
    stopping_ = true;
    flush_on_stop_ = flush;
  }
  cv_.notify_all();
  if (flush && send_thread_.joinable()) {
    // Bounded drain: give the send pump a deadline to flush the outbox. A
    // live but wedged peer (one that stopped reading, leaving ::send blocked
    // on a full TCP buffer) must not hang teardown.
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait_for(lk, kStopFlushDeadline, [this] { return sender_done_; });
  }
  // Shut both directions down BEFORE joining: interrupts a ::send still
  // blocked on a full buffer as well as the recv thread's blocking read.
  socket_.shutdown_both();
  if (send_thread_.joinable()) send_thread_.join();
  if (recv_thread_.joinable()) recv_thread_.join();
  socket_.close();
}

void PeerLink::send_main() {
  pump_send();
  {
    std::lock_guard<std::mutex> lk(mu_);
    sender_done_ = true;
  }
  cv_.notify_all();  // wakes stop()'s bounded drain
}

void PeerLink::pump_send() {
  std::vector<Frame> batch;
  batch.reserve(kMaxCoalescedFrames);
  for (;;) {
    batch.clear();
    bool beacon = false;
    {
      std::unique_lock<std::mutex> lk(mu_);
      if (heartbeat_interval_.count() > 0) {
        if (!cv_.wait_for(lk, heartbeat_interval_, [this] {
              return stopping_ || !outbox_.empty();
            })) {
          // Idle for a full interval: emit a liveness beacon so peers can
          // tell a quiet-but-healthy link from a frozen process.
          beacon = true;
        }
      } else {
        cv_.wait(lk, [this] { return stopping_ || !outbox_.empty(); });
      }
      if (!beacon) {
        if (outbox_.empty()) {
          // stopping_ and nothing left (or flush was waived).
          if (stopping_) return;
          continue;
        }
        if (stopping_ && !flush_on_stop_) return;
        // Drain a batch: everything queued (up to the iovec budget) goes
        // out in one scatter-gather write, so ACK/CREDIT frames ride the
        // syscall a DATA frame was paying for anyway.
        while (!outbox_.empty() && batch.size() < kMaxCoalescedFrames) {
          batch.push_back(std::move(outbox_.front()));
          outbox_.pop_front();
        }
      }
    }
    if (beacon) {
      core::BufferRoute route;
      route.producer = me_;
      batch.push_back(make_frame(FrameType::kHeartbeat, route));
    } else {
      cv_.notify_all();  // outbox space freed: wake back-pressured senders
    }
    std::uint64_t bytes = 0;
    for (const Frame& f : batch) {
      bytes += sizeof(FrameHeader) + f.payload.size();
    }
    bool ok;
    {
      obs::ScopedSpan span(
          obs_, send_track_, "net.send",
          static_cast<std::int64_t>(batch.front().header.type),
          static_cast<std::int64_t>(bytes));
      ok = write_frames(socket_, {batch.data(), batch.size()}, send_seq_);
    }
    if (!ok) {
      // Write failure. Outside teardown this must be REPORTED, not merely
      // noted: the recv thread can be blocked in a read the peer's death
      // never interrupts (whichever side notices first depends on timing),
      // and the engine's credit waits rely on the report to unwind instead
      // of hanging. The once-only guard keeps the one-report-per-link
      // contract when both pumps see the failure.
      bool teardown = false;
      {
        std::lock_guard<std::mutex> lk(mu_);
        teardown = stopping_;
        send_failed_ = true;
        outbox_.clear();
        pending_writes_ = 0;
      }
      cv_.notify_all();  // releases wait_flushed / back-pressured callers
      if (!teardown) {
        report_error(WireError::kSocketError, "send failed");
        // Unblock the recv thread's read; its own report is suppressed by
        // the guard and it exits quietly.
        socket_.shutdown_both();
      }
      return;
    }
    send_seq_ += batch.size();
    if (!beacon) {
      {
        std::lock_guard<std::mutex> lk(mu_);
        pending_writes_ -= static_cast<int>(
            std::min<std::size_t>(batch.size(),
                                  static_cast<std::size_t>(pending_writes_)));
      }
      cv_.notify_all();  // wait_flushed progress
    }
    if (metrics_ != nullptr) {
      metrics_->send_batches.fetch_add(1, std::memory_order_relaxed);
      metrics_->frames_sent.fetch_add(batch.size(),
                                      std::memory_order_relaxed);
      metrics_->bytes_sent.fetch_add(bytes, std::memory_order_relaxed);
      for (const Frame& f : batch) {
        switch (f.type()) {
          case FrameType::kData:
            metrics_->data_sent.fetch_add(1, std::memory_order_relaxed);
            break;
          case FrameType::kCredit:
            metrics_->credits_sent.fetch_add(1, std::memory_order_relaxed);
            break;
          case FrameType::kAck:
            metrics_->acks_sent.fetch_add(1, std::memory_order_relaxed);
            break;
          case FrameType::kEow:
            metrics_->eows_sent.fetch_add(1, std::memory_order_relaxed);
            break;
          case FrameType::kAbort:
            metrics_->aborts_sent.fetch_add(1, std::memory_order_relaxed);
            break;
          case FrameType::kHeartbeat:
            metrics_->heartbeats_sent.fetch_add(1, std::memory_order_relaxed);
            break;
          default:
            break;
        }
      }
    }
  }
}

void PeerLink::recv_main() {
  std::uint64_t expected_seq = 1;
  for (;;) {
    Frame f;
    const WireError err = read_frame(socket_, f, expected_seq);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stopping_) return;  // teardown in progress: result is moot
    }
    if (err != WireError::kOk) {
      report_error(err, to_string(err));
      return;
    }
    ++expected_seq;
    const std::uint64_t bytes = sizeof(FrameHeader) + f.payload.size();
    if (metrics_ != nullptr) {
      metrics_->frames_recv.fetch_add(1, std::memory_order_relaxed);
      metrics_->bytes_recv.fetch_add(bytes, std::memory_order_relaxed);
      switch (f.type()) {
        case FrameType::kData:
          metrics_->data_recv.fetch_add(1, std::memory_order_relaxed);
          break;
        case FrameType::kCredit:
          metrics_->credits_recv.fetch_add(1, std::memory_order_relaxed);
          break;
        case FrameType::kAck:
          metrics_->acks_recv.fetch_add(1, std::memory_order_relaxed);
          break;
        case FrameType::kEow:
          metrics_->eows_recv.fetch_add(1, std::memory_order_relaxed);
          break;
        case FrameType::kAbort:
          metrics_->aborts_recv.fetch_add(1, std::memory_order_relaxed);
          break;
        case FrameType::kHeartbeat:
          metrics_->heartbeats_recv.fetch_add(1, std::memory_order_relaxed);
          break;
        default:
          break;
      }
    }
    obs::ScopedSpan span(obs_, recv_track_, "net.recv",
                         static_cast<std::int64_t>(f.header.type),
                         static_cast<std::int64_t>(bytes));
    on_frame_(peer_, f);
  }
}

void PeerLink::report_error(WireError err, const std::string& detail) {
  if (error_reported_.exchange(true)) return;  // one report per link
  if (metrics_ != nullptr && err != WireError::kClosed) {
    metrics_->protocol_errors.fetch_add(1, std::memory_order_relaxed);
  }
  if (on_error_) {
    on_error_(peer_, err, "rank " + std::to_string(peer_) + ": " + detail);
  }
}

std::vector<Socket> connect_mesh(RankEnv& env, double timeout_s) {
  std::vector<Socket> peers(static_cast<std::size_t>(env.num_ranks));
  // Connect to every lower rank, announcing ourselves.
  for (int s = 0; s < env.rank; ++s) {
    Socket c = connect_loopback(env.ports[static_cast<std::size_t>(s)],
                                timeout_s);
    core::BufferRoute route;
    route.producer = env.rank;
    Frame hello = make_frame(FrameType::kHello, route);
    if (!write_frame(c, hello, /*seq=*/0)) {
      throw std::runtime_error("net: HELLO to rank " + std::to_string(s) +
                               " failed");
    }
    peers[static_cast<std::size_t>(s)] = std::move(c);
  }
  // Accept one connection from every higher rank; identify it by HELLO.
  for (int i = env.rank + 1; i < env.num_ranks; ++i) {
    Socket a = accept_one(env.listener, timeout_s);
    Frame f;
    const WireError err = read_frame(a, f, /*expected_seq=*/0);
    if (err != WireError::kOk || f.type() != FrameType::kHello) {
      throw std::runtime_error(
          "net: bad handshake: " +
          std::string(err != WireError::kOk ? to_string(err) : "not HELLO"));
    }
    const int r = f.header.route.producer;
    if (r <= env.rank || r >= env.num_ranks ||
        peers[static_cast<std::size_t>(r)].valid()) {
      throw std::runtime_error("net: HELLO from unexpected rank " +
                               std::to_string(r));
    }
    peers[static_cast<std::size_t>(r)] = std::move(a);
  }
  return peers;
}

}  // namespace dc::net
