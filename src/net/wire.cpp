#include "net/wire.hpp"

#include <sys/uio.h>

#include <cstring>

#include "core/arena.hpp"

namespace dc::net {

const char* to_string(FrameType t) {
  switch (t) {
    case FrameType::kHello: return "HELLO";
    case FrameType::kData: return "DATA";
    case FrameType::kCredit: return "CREDIT";
    case FrameType::kAck: return "ACK";
    case FrameType::kEow: return "EOW";
    case FrameType::kAbort: return "ABORT";
    case FrameType::kDone: return "DONE";
    case FrameType::kHeartbeat: return "HEARTBEAT";
  }
  return "?";
}

const char* to_string(WireError e) {
  switch (e) {
    case WireError::kOk: return "ok";
    case WireError::kClosed: return "connection closed";
    case WireError::kTruncated: return "truncated frame";
    case WireError::kBadMagic: return "bad magic";
    case WireError::kIncompatibleVersion: return "incompatible wire version";
    case WireError::kBadType: return "bad frame type";
    case WireError::kBadHeaderChecksum: return "header checksum mismatch";
    case WireError::kOversizedPayload: return "oversized payload length";
    case WireError::kBadPayloadChecksum: return "payload checksum mismatch";
    case WireError::kBadSeq: return "sequence number gap";
    case WireError::kSocketError: return "socket error";
  }
  return "?";
}

Frame make_frame(FrameType type, core::BufferRoute route,
                 core::Buffer payload) {
  Frame f;
  f.header.type = static_cast<std::uint8_t>(type);
  f.header.route = route;
  f.header.payload_bytes = static_cast<std::uint32_t>(payload.size());
  f.payload = std::move(payload);
  return f;
}

Frame make_frame(FrameType type, core::BufferRoute route,
                 std::vector<std::byte> payload) {
  return make_frame(type, route, core::Buffer::wrap(std::move(payload)));
}

void seal_frame(Frame& f, std::uint64_t seq) {
  f.header.magic = kFrameMagic;
  f.header.seq = seq;
  f.header.payload_bytes = static_cast<std::uint32_t>(f.payload.size());
  f.header.payload_crc = core::crc32c(f.payload.bytes());
  f.header.header_crc = f.header.compute_checksum();
}

bool write_frame(Socket& s, Frame& f, std::uint64_t seq) {
  seal_frame(f, seq);
  iovec vecs[2];
  vecs[0].iov_base = &f.header;
  vecs[0].iov_len = sizeof(FrameHeader);
  std::size_t n = 1;
  const auto payload = f.payload.bytes();
  if (!payload.empty()) {
    vecs[1].iov_base = const_cast<std::byte*>(payload.data());
    vecs[1].iov_len = payload.size();
    n = 2;
  }
  return s.send_vecs(vecs, n);
}

bool write_frames(Socket& s, std::span<Frame> frames, std::uint64_t first_seq) {
  if (frames.empty()) return true;
  // Seal first: every header must be final before any byte is queued, and
  // the iovec array points straight at the headers (no staging copy).
  std::vector<iovec> vecs;
  vecs.reserve(frames.size() * 2);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    seal_frame(frames[i], first_seq + i);
    vecs.push_back({&frames[i].header, sizeof(FrameHeader)});
    const auto payload = frames[i].payload.bytes();
    if (!payload.empty()) {
      vecs.push_back({const_cast<std::byte*>(payload.data()), payload.size()});
    }
  }
  return s.send_vecs(vecs.data(), vecs.size());
}

WireError read_frame(Socket& s, Frame& out, std::uint64_t expected_seq) {
  std::size_t got = 0;
  const RecvStatus hs = s.recv_exact(
      {reinterpret_cast<std::byte*>(&out.header), sizeof(FrameHeader)}, got);
  if (hs == RecvStatus::kClosed) {
    return got == 0 ? WireError::kClosed : WireError::kTruncated;
  }
  if (hs == RecvStatus::kError) return WireError::kSocketError;

  if (out.header.magic != kFrameMagic) {
    // A v1 peer is a configuration error, not line noise: name it.
    return out.header.magic == kFrameMagicV1 ? WireError::kIncompatibleVersion
                                             : WireError::kBadMagic;
  }
  if (out.header.header_crc != out.header.compute_checksum()) {
    return WireError::kBadHeaderChecksum;
  }
  const auto t = static_cast<FrameType>(out.header.type);
  if (t < FrameType::kHello || t > FrameType::kHeartbeat) {
    return WireError::kBadType;
  }
  // The length check comes after the header checksum: a frame that passes
  // the checksum yet claims an absurd length is an explicit protocol
  // violation, not something to try to allocate.
  if (out.header.payload_bytes > kMaxPayloadBytes) {
    return WireError::kOversizedPayload;
  }
  if (out.header.seq != expected_seq) return WireError::kBadSeq;

  if (out.header.payload_bytes == 0) {
    out.payload = core::Buffer();
  } else {
    // Straight into an arena slot: the engine adopts this storage as the
    // delivered stream buffer, so the recv side is copy-free too.
    auto storage =
        core::BufferArena::global().lease(out.header.payload_bytes);
    storage->resize(out.header.payload_bytes);
    const RecvStatus ps =
        s.recv_exact({storage->data(), storage->size()}, got);
    if (ps == RecvStatus::kClosed) return WireError::kTruncated;
    if (ps == RecvStatus::kError) return WireError::kSocketError;
    out.payload =
        core::Buffer::adopt(std::move(storage), out.header.payload_bytes);
  }
  if (core::crc32c(out.payload.bytes()) != out.header.payload_crc) {
    return WireError::kBadPayloadChecksum;
  }
  return WireError::kOk;
}

}  // namespace dc::net
