#include "net/wire.hpp"

#include <cstring>

namespace dc::net {

const char* to_string(FrameType t) {
  switch (t) {
    case FrameType::kHello: return "HELLO";
    case FrameType::kData: return "DATA";
    case FrameType::kCredit: return "CREDIT";
    case FrameType::kAck: return "ACK";
    case FrameType::kEow: return "EOW";
    case FrameType::kAbort: return "ABORT";
    case FrameType::kDone: return "DONE";
    case FrameType::kHeartbeat: return "HEARTBEAT";
  }
  return "?";
}

const char* to_string(WireError e) {
  switch (e) {
    case WireError::kOk: return "ok";
    case WireError::kClosed: return "connection closed";
    case WireError::kTruncated: return "truncated frame";
    case WireError::kBadMagic: return "bad magic";
    case WireError::kBadType: return "bad frame type";
    case WireError::kBadHeaderChecksum: return "header checksum mismatch";
    case WireError::kOversizedPayload: return "oversized payload length";
    case WireError::kBadPayloadChecksum: return "payload checksum mismatch";
    case WireError::kBadSeq: return "sequence number gap";
    case WireError::kSocketError: return "socket error";
  }
  return "?";
}

Frame make_frame(FrameType type, core::BufferRoute route,
                 std::vector<std::byte> payload) {
  Frame f;
  f.header.type = static_cast<std::uint8_t>(type);
  f.header.route = route;
  f.header.payload_bytes = static_cast<std::uint32_t>(payload.size());
  f.payload = std::move(payload);
  return f;
}

bool write_frame(Socket& s, Frame& f, std::uint64_t seq) {
  f.header.magic = kFrameMagic;
  f.header.seq = seq;
  f.header.payload_bytes = static_cast<std::uint32_t>(f.payload.size());
  f.header.payload_checksum = fnv1a(f.payload);
  f.header.header_checksum = f.header.compute_checksum();
  if (!s.send_all({reinterpret_cast<const std::byte*>(&f.header),
                   sizeof(FrameHeader)})) {
    return false;
  }
  return f.payload.empty() || s.send_all(f.payload);
}

WireError read_frame(Socket& s, Frame& out, std::uint64_t expected_seq) {
  std::size_t got = 0;
  const RecvStatus hs = s.recv_exact(
      {reinterpret_cast<std::byte*>(&out.header), sizeof(FrameHeader)}, got);
  if (hs == RecvStatus::kClosed) {
    return got == 0 ? WireError::kClosed : WireError::kTruncated;
  }
  if (hs == RecvStatus::kError) return WireError::kSocketError;

  if (out.header.magic != kFrameMagic) return WireError::kBadMagic;
  if (out.header.header_checksum != out.header.compute_checksum()) {
    return WireError::kBadHeaderChecksum;
  }
  const auto t = static_cast<FrameType>(out.header.type);
  if (t < FrameType::kHello || t > FrameType::kHeartbeat) {
    return WireError::kBadType;
  }
  // The length check comes after the header checksum: a frame that passes
  // the checksum yet claims an absurd length is an explicit protocol
  // violation, not something to try to allocate.
  if (out.header.payload_bytes > kMaxPayloadBytes) {
    return WireError::kOversizedPayload;
  }
  if (out.header.seq != expected_seq) return WireError::kBadSeq;

  out.payload.resize(out.header.payload_bytes);
  if (!out.payload.empty()) {
    const RecvStatus ps = s.recv_exact(out.payload, got);
    if (ps == RecvStatus::kClosed) return WireError::kTruncated;
    if (ps == RecvStatus::kError) return WireError::kSocketError;
  }
  if (fnv1a(out.payload) != out.header.payload_checksum) {
    return WireError::kBadPayloadChecksum;
  }
  return WireError::kOk;
}

}  // namespace dc::net
