#pragma once

#include <cstdint>
#include <vector>

#include "sim/cluster.hpp"
#include "viz/filters.hpp"
#include "viz/image.hpp"

namespace dc::adr {

/// Tuning knobs of the Active Data Repository baseline.
struct AdrConfig {
  int io_depth = 4;  ///< outstanding async disk reads per node ("optimal
                     ///< number of active asynchronous disk I/O calls")
  std::size_t message_bytes = 64 * 1024;  ///< gather-message granularity
  std::uint64_t header_bytes = 64;
};

/// Result of an ADR run over several units of work (timesteps).
struct AdrResult {
  std::vector<sim::SimTime> per_uow;
  sim::SimTime avg = 0.0;
  std::vector<std::uint64_t> digests;
  viz::Image last_image;
};

/// The ADR baseline (paper Section 4.2): a highly tuned SPMD accumulator
/// framework for homogeneous clusters, reimplemented on the same simulated
/// substrate as DataCutter so the comparison isolates the programming model:
///
///  - static partitioning: each node processes exactly the chunks resident
///    on its local disks (no dynamic load balancing);
///  - read -> extract -> rasterize fused per node into a local z-buffer,
///    with `io_depth` asynchronous disk reads overlapping compute;
///  - a pixel-merging phase gathers every node's dense z-buffer to the
///    merge node, which composites and extracts the final image.
///
/// Z-buffer rendering only — "Z-buffer better matches the programming model
/// of ADR". The rendered image is bit-identical to the DataCutter versions.
AdrResult run_adr_isosurface(sim::Topology& topo, const viz::VizWorkload& workload,
                             const std::vector<int>& nodes, int merge_host,
                             const AdrConfig& config, int uows);

}  // namespace dc::adr
