#include "adr/adr.hpp"

#include <deque>
#include <memory>
#include <stdexcept>

#include "viz/marching_cubes.hpp"
#include "viz/raster.hpp"
#include "viz/zbuffer.hpp"

namespace dc::adr {

namespace {

struct NodeState {
  int host = -1;
  std::vector<data::ChunkRef> chunks;
  std::size_t next_read = 0;
  int inflight_reads = 0;
  std::size_t computes_pending = 0;
  bool sent = false;
  viz::ZBuffer zb;
  std::vector<float> scratch;
  std::vector<viz::Triangle> tris;
  // Compute is one worker thread per core pulling from a queue of read
  // chunks — the SPMD threading ADR actually uses. (Submitting every chunk
  // as its own concurrent job would let the node grab an outsized share of
  // a loaded CPU under the fair-share model.)
  std::deque<double> compute_queue;  ///< pending per-chunk compute demands
  int active_workers = 0;
};

struct UowState {
  sim::Topology* topo = nullptr;
  viz::VizWorkload w;
  AdrConfig cfg;
  viz::Camera camera;
  int merge_host = -1;
  int uow = 0;

  std::vector<NodeState> nodes;
  viz::ZBuffer global;
  std::size_t messages_pending_merge = 0;  ///< merge-side work not yet retired
  std::size_t nodes_not_sent = 0;
  bool all_sends_issued = false;
  bool finished = false;
  sim::SimTime finish_time = 0.0;
};

/// Rasterizes one chunk's triangles into the node z-buffer; returns the ops.
double raster_chunk(UowState& st, NodeState& node) {
  const float scalar_norm = st.w.iso_value / st.w.field_max;
  std::uint64_t fragments = 0;
  for (const viz::Triangle& t : node.tris) {
    viz::ScreenTriangle s;
    if (!st.camera.project(t, s)) continue;
    const std::uint32_t rgba =
        viz::shade_flat(s.world_normal, st.camera.view_dir(), scalar_norm);
    fragments += viz::rasterize(s, st.w.width, st.w.height,
                                [&](int x, int y, float d) {
                                  node.zb.apply(
                                      static_cast<std::uint32_t>(y) *
                                              static_cast<std::uint32_t>(st.w.width) +
                                          static_cast<std::uint32_t>(x),
                                      d, rgba);
                                });
  }
  return st.w.cost.raster_per_triangle * static_cast<double>(node.tris.size()) +
         st.w.cost.raster_per_fragment * static_cast<double>(fragments);
}

void start_send_phase(std::shared_ptr<UowState> st, std::size_t node_idx);
void check_merge_done(std::shared_ptr<UowState> st);

void pump_workers(std::shared_ptr<UowState> st, std::size_t node_idx) {
  NodeState& node = st->nodes[node_idx];
  auto& host = st->topo->host(node.host);
  while (node.active_workers < host.cpu().cores() && !node.compute_queue.empty()) {
    const double ops = node.compute_queue.front();
    node.compute_queue.pop_front();
    ++node.active_workers;
    host.cpu().submit(ops, [st, node_idx] {
      NodeState& n = st->nodes[node_idx];
      --n.active_workers;
      --n.computes_pending;
      pump_workers(st, node_idx);
      if (n.computes_pending == 0 && n.next_read == n.chunks.size() &&
          n.inflight_reads == 0 && !n.sent) {
        start_send_phase(st, node_idx);
      }
    });
  }
}

void issue_reads(std::shared_ptr<UowState> st, std::size_t node_idx) {
  NodeState& node = st->nodes[node_idx];
  auto& host = st->topo->host(node.host);
  while (node.inflight_reads < st->cfg.io_depth &&
         node.next_read < node.chunks.size()) {
    const data::ChunkRef ref = node.chunks[node.next_read++];
    ++node.inflight_reads;
    host.disk(ref.disk).read(ref.bytes, [st, node_idx, ref] {
      NodeState& n = st->nodes[node_idx];
      --n.inflight_reads;
      // Keep the I/O pipeline full while this chunk computes.
      issue_reads(st, node_idx);
      // Fused extract + rasterize into the node-local z-buffer. The real
      // work runs now; its cost is queued for the per-core worker threads
      // and retires on the node's (possibly loaded) CPU.
      n.tris.clear();
      const viz::McStats s = viz::extract_chunk(
          st->w, ref, st->w.timestep(st->uow), n.scratch, n.tris);
      double ops = st->w.cost.read_per_byte * static_cast<double>(ref.bytes) +
                   viz::extract_ops(st->w.cost, s);
      ops += raster_chunk(*st, n);
      n.compute_queue.push_back(ops);
      pump_workers(st, node_idx);
    });
  }
}

void start_send_phase(std::shared_ptr<UowState> st, std::size_t node_idx) {
  NodeState& node = st->nodes[node_idx];
  node.sent = true;

  // Fold this node's accumulator into the global one now; compositing is
  // commutative and associative, so the final image does not depend on the
  // (virtual) arrival order. Time is charged on the merge node per message.
  const auto size = static_cast<std::uint32_t>(node.zb.size());
  for (std::uint32_t i = 0; i < size; ++i) {
    st->global.apply(i, node.zb.depth_at(i), node.zb.rgba_at(i));
  }

  const std::uint64_t total_bytes =
      static_cast<std::uint64_t>(size) * sizeof(viz::PixEntry);
  const std::size_t n_msgs =
      (total_bytes + st->cfg.message_bytes - 1) / st->cfg.message_bytes;
  const std::size_t entries_per_msg = st->cfg.message_bytes / sizeof(viz::PixEntry);

  auto& host = st->topo->host(node.host);
  // Serialize the z-buffer (dense — inactive pixels included), then stream
  // the messages to the merge node.
  host.cpu().submit(
      st->w.cost.zbuffer_touch_per_entry * static_cast<double>(size),
      [st, node_idx, n_msgs, entries_per_msg] {
        NodeState& n = st->nodes[node_idx];
        st->messages_pending_merge += n_msgs;
        if (--st->nodes_not_sent == 0) st->all_sends_issued = true;
        for (std::size_t i = 0; i < n_msgs; ++i) {
          st->topo->network().send(
              n.host, st->merge_host,
              st->cfg.message_bytes + st->cfg.header_bytes,
              [st, entries_per_msg] {
                st->topo->host(st->merge_host)
                    .cpu()
                    .submit(st->w.cost.merge_per_entry *
                                static_cast<double>(entries_per_msg),
                            [st] {
                              --st->messages_pending_merge;
                              check_merge_done(st);
                            });
              });
        }
        check_merge_done(st);
      });
}

void check_merge_done(std::shared_ptr<UowState> st) {
  if (st->finished || !st->all_sends_issued || st->messages_pending_merge != 0) {
    return;
  }
  st->finished = true;  // guard; the image extraction below runs once
  st->topo->host(st->merge_host)
      .cpu()
      .submit(st->w.cost.image_per_pixel * static_cast<double>(st->global.size()),
              [st] { st->finish_time = st->topo->sim().now(); });
}

}  // namespace

AdrResult run_adr_isosurface(sim::Topology& topo, const viz::VizWorkload& workload,
                             const std::vector<int>& nodes, int merge_host,
                             const AdrConfig& config, int uows) {
  if (nodes.empty()) {
    throw std::invalid_argument("run_adr_isosurface: no nodes");
  }
  AdrResult result;
  for (int u = 0; u < uows; ++u) {
    auto st = std::make_shared<UowState>();
    st->topo = &topo;
    st->w = workload;
    st->cfg = config;
    st->camera = workload.make_camera(u);
    st->merge_host = merge_host;
    st->uow = u;
    st->global = viz::ZBuffer(workload.width, workload.height);
    st->nodes.resize(nodes.size());
    st->nodes_not_sent = nodes.size();

    const sim::SimTime t0 = topo.sim().now();
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      NodeState& n = st->nodes[i];
      n.host = nodes[i];
      n.chunks = workload.store->chunks_on_host(nodes[i]);
      n.computes_pending = n.chunks.size();
      n.zb = viz::ZBuffer(workload.width, workload.height);
      // Accumulator initialization, then the overlapped read/compute loop.
      topo.host(n.host).cpu().submit(
          workload.cost.zbuffer_touch_per_entry * static_cast<double>(n.zb.size()),
          [st, i] {
            NodeState& node = st->nodes[i];
            if (node.chunks.empty()) {
              start_send_phase(st, i);
            } else {
              issue_reads(st, i);
            }
          });
    }

    topo.sim().run();
    if (!st->finished || st->finish_time == 0.0) {
      throw std::runtime_error("run_adr_isosurface: UOW did not complete");
    }
    result.per_uow.push_back(st->finish_time - t0);
    result.digests.push_back(st->global.to_image(viz::RenderSink{}.background).digest());
    if (u == uows - 1) {
      result.last_image = st->global.to_image(viz::RenderSink{}.background);
    }
  }
  sim::SimTime sum = 0.0;
  for (sim::SimTime t : result.per_uow) sum += t;
  result.avg = result.per_uow.empty()
                   ? 0.0
                   : sum / static_cast<double>(result.per_uow.size());
  return result;
}

}  // namespace dc::adr
