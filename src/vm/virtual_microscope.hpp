#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/runtime.hpp"
#include "data/store.hpp"
#include "sim/cluster.hpp"

namespace dc::vm {

/// The paper's other motivating application (Section 1 cites the digitized
/// microscopy browser of [8]): a huge 2-D slide stored as tiles declustered
/// over the storage system; a client pans a viewport at some zoom level and
/// the filter pipeline reads, decompresses, subsamples, clips and stitches
/// the visible region. Unlike isosurface rendering, every stage is
/// stateless, so the pipeline needs no combine filter beyond the stitcher
/// writing disjoint regions.
///
/// Tile pixels are procedural (deterministic in slide seed and position) —
/// the stand-in for stored sensor data, mirroring how PlumeField stands in
/// for the ParSSim output.
class Slide {
 public:
  struct Spec {
    int tiles_x = 64;
    int tiles_y = 64;
    int tile_px = 64;            ///< tile edge, pixels
    std::uint64_t seed = 7;
    int files = 32;              ///< declustering granularity
    double stored_bytes_per_pixel = 3.0;  ///< compressed RGB on disk
  };

  explicit Slide(const Spec& spec);

  [[nodiscard]] const Spec& spec() const { return spec_; }
  [[nodiscard]] int width_px() const { return spec_.tiles_x * spec_.tile_px; }
  [[nodiscard]] int height_px() const { return spec_.tiles_y * spec_.tile_px; }

  /// Grayscale value of one slide pixel (procedural "tissue" texture).
  [[nodiscard]] std::uint8_t pixel(int x, int y) const;

  /// Fills `out` with one tile's pixels, row-major.
  void fill_tile(int tx, int ty, std::vector<std::uint8_t>& out) const;

  /// Stored (compressed) size of one tile.
  [[nodiscard]] std::uint64_t tile_bytes() const;

  // ---- storage placement (Hilbert-declustered files over disks) -----------
  void place_uniform(const std::vector<data::FileLocation>& locations);
  [[nodiscard]] int file_of_tile(int tx, int ty) const;
  [[nodiscard]] const data::FileLocation& location_of_file(int file) const;

  struct TileRef {
    int tx = 0, ty = 0;
    int disk = 0;
    std::uint64_t bytes = 0;
  };
  /// Tiles resident on `host` that intersect the pixel rectangle
  /// [x0, x0+w) x [y0, y0+h).
  [[nodiscard]] std::vector<TileRef> tiles_on_host(int host, int x0, int y0,
                                                   int w, int h) const;

 private:
  Spec spec_;
  std::vector<int> file_of_tile_;
  std::vector<data::FileLocation> location_;
};

/// A pan/zoom request: render the slide rectangle [x0, x0+w) x [y0, y0+h)
/// subsampled by `zoom` (output is (w/zoom) x (h/zoom) pixels).
struct Viewport {
  int x0 = 0, y0 = 0;
  int w = 256, h = 256;
  int zoom = 2;  ///< power-of-two subsampling factor
};

/// Per-stage cost constants (same convention as viz::CostModel).
struct VmCost {
  double decompress_per_byte = 400.0;
  double zoom_per_input_pixel = 800.0;
  double stitch_per_output_pixel = 200.0;
};

/// Output collector: the stitched grayscale viewport per unit of work.
struct VmSink {
  std::vector<std::vector<std::uint8_t>> frames;  ///< row-major, one per UOW
  std::vector<std::uint64_t> digests;
  int out_w = 0, out_h = 0;
};

/// Everything the filters need.
struct VmWorkload {
  const Slide* slide = nullptr;
  Viewport base_view;
  int pan_step = 64;  ///< viewport shifts right by this many pixels per UOW
  VmCost cost;

  [[nodiscard]] Viewport view(int uow) const;
};

/// Assembled pipeline: TileRead (sources on data hosts) -> Zoom copies ->
/// Stitch (single copy).
struct VmApp {
  core::Graph graph;
  core::Placement placement;
  std::shared_ptr<VmSink> sink;
};

[[nodiscard]] VmApp build_vm_app(const VmWorkload& workload,
                                 const std::vector<int>& data_hosts,
                                 const std::vector<std::pair<int, int>>& zoom_hosts,
                                 int stitch_host,
                                 std::size_t buffer_bytes = 32 * 1024);

struct VmRun {
  std::vector<sim::SimTime> per_uow;
  sim::SimTime avg = 0.0;
  std::shared_ptr<VmSink> sink;
  core::Metrics metrics;
};

VmRun run_vm_app(sim::Topology& topo, const VmWorkload& workload,
                 const std::vector<int>& data_hosts,
                 const std::vector<std::pair<int, int>>& zoom_hosts,
                 int stitch_host, const core::RuntimeConfig& rt_config, int uows);

/// Runtime-free reference: renders the viewport directly (average-pools
/// zoom x zoom blocks). Every pipeline configuration must match it exactly.
[[nodiscard]] std::vector<std::uint8_t> direct_viewport(const Slide& slide,
                                                        const Viewport& view);

/// FNV digest of a frame, for cheap comparisons.
[[nodiscard]] std::uint64_t frame_digest(const std::vector<std::uint8_t>& frame);

}  // namespace dc::vm
