#include "vm/virtual_microscope.hpp"

#include <cstring>
#include <stdexcept>

#include "data/decluster.hpp"
#include "data/volume.hpp"

namespace dc::vm {

namespace {

std::uint64_t mix(std::uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

std::uint64_t hash2(std::uint64_t seed, std::uint32_t a, std::uint32_t b) {
  return mix(seed * 0xd6e8feb86659fd93ULL ^
             (static_cast<std::uint64_t>(a) << 32 | b) * 0x9e3779b97f4a7c15ULL);
}

/// Header of one tile on the TileRead -> Zoom stream.
struct TileHeader {
  std::int32_t tx = 0, ty = 0;
  std::int32_t edge = 0;  ///< pixels per side
  [[nodiscard]] std::size_t packed_bytes() const {
    return sizeof(TileHeader) +
           static_cast<std::size_t>(edge) * static_cast<std::size_t>(edge);
  }
};

/// Header of one stitched region on the Zoom -> Stitch stream.
struct RegionHeader {
  std::int32_t ox = 0, oy = 0;  ///< output-frame position
  std::int32_t w = 0, h = 0;
  [[nodiscard]] std::size_t packed_bytes() const {
    return sizeof(RegionHeader) +
           static_cast<std::size_t>(w) * static_cast<std::size_t>(h);
  }
};

void validate_view(const Slide& slide, const Viewport& v) {
  if (v.zoom < 1 || (v.zoom & (v.zoom - 1)) != 0) {
    throw std::invalid_argument("Viewport: zoom must be a power of two");
  }
  if (slide.spec().tile_px % v.zoom != 0) {
    throw std::invalid_argument("Viewport: zoom must divide the tile size");
  }
  if (v.x0 % v.zoom != 0 || v.y0 % v.zoom != 0 || v.w % v.zoom != 0 ||
      v.h % v.zoom != 0) {
    throw std::invalid_argument("Viewport: origin/extent must be zoom-aligned");
  }
  if (v.x0 < 0 || v.y0 < 0 || v.x0 + v.w > slide.width_px() ||
      v.y0 + v.h > slide.height_px()) {
    throw std::invalid_argument("Viewport: outside the slide");
  }
}

}  // namespace

Slide::Slide(const Spec& spec) : spec_(spec) {
  if (spec.tiles_x <= 0 || spec.tiles_y <= 0 || spec.tile_px <= 0 ||
      spec.files <= 0) {
    throw std::invalid_argument("Slide: bad spec");
  }
  // Decluster tiles with the 3-D Hilbert machinery at z = 1.
  const data::ChunkLayout layout(
      data::GridDims{spec.tiles_x, spec.tiles_y, 1}, spec.tiles_x, spec.tiles_y,
      1);
  file_of_tile_ = data::hilbert_decluster(layout, spec.files);
  location_.assign(static_cast<std::size_t>(spec.files), data::FileLocation{});
}

std::uint8_t Slide::pixel(int x, int y) const {
  // Procedural "tissue": bright stroma with dark cell nuclei scattered on a
  // 32-pixel lattice, plus fine grain noise. Pure integer math so every
  // copy computes bit-identical values.
  const auto ux = static_cast<std::uint32_t>(x);
  const auto uy = static_cast<std::uint32_t>(y);
  const std::uint64_t grain = hash2(spec_.seed, ux, uy);
  const std::uint64_t region = hash2(spec_.seed ^ 0xabcdULL, ux >> 5, uy >> 5);
  const int cx = (x & 31) - 16 + static_cast<int>(region & 7) - 3;
  const int cy = (y & 31) - 16 + static_cast<int>((region >> 3) & 7) - 3;
  const int r2 = cx * cx + cy * cy;
  const int nucleus_r2 = 20 + static_cast<int>((region >> 6) & 63);
  int v = r2 < nucleus_r2 ? 70 : 180;
  v += static_cast<int>(grain & 31) - 16;
  if (v < 0) v = 0;
  if (v > 255) v = 255;
  return static_cast<std::uint8_t>(v);
}

void Slide::fill_tile(int tx, int ty, std::vector<std::uint8_t>& out) const {
  const int edge = spec_.tile_px;
  out.resize(static_cast<std::size_t>(edge) * static_cast<std::size_t>(edge));
  const int x0 = tx * edge, y0 = ty * edge;
  for (int y = 0; y < edge; ++y) {
    for (int x = 0; x < edge; ++x) {
      out[static_cast<std::size_t>(y) * static_cast<std::size_t>(edge) +
          static_cast<std::size_t>(x)] = pixel(x0 + x, y0 + y);
    }
  }
}

std::uint64_t Slide::tile_bytes() const {
  return static_cast<std::uint64_t>(
      static_cast<double>(spec_.tile_px) * spec_.tile_px *
      spec_.stored_bytes_per_pixel);
}

void Slide::place_uniform(const std::vector<data::FileLocation>& locations) {
  if (locations.empty()) throw std::invalid_argument("Slide: no locations");
  for (std::size_t f = 0; f < location_.size(); ++f) {
    location_[f] = locations[f % locations.size()];
  }
}

int Slide::file_of_tile(int tx, int ty) const {
  return file_of_tile_.at(static_cast<std::size_t>(ty) *
                              static_cast<std::size_t>(spec_.tiles_x) +
                          static_cast<std::size_t>(tx));
}

const data::FileLocation& Slide::location_of_file(int file) const {
  return location_.at(static_cast<std::size_t>(file));
}

std::vector<Slide::TileRef> Slide::tiles_on_host(int host, int x0, int y0,
                                                 int w, int h) const {
  std::vector<TileRef> refs;
  const int edge = spec_.tile_px;
  const int tx0 = x0 / edge;
  const int ty0 = y0 / edge;
  const int tx1 = (x0 + w - 1) / edge;
  const int ty1 = (y0 + h - 1) / edge;
  for (int ty = ty0; ty <= ty1; ++ty) {
    for (int tx = tx0; tx <= tx1; ++tx) {
      const auto& loc = location_of_file(file_of_tile(tx, ty));
      if (loc.host != host) continue;
      refs.push_back(TileRef{tx, ty, loc.disk, tile_bytes()});
    }
  }
  return refs;
}

Viewport VmWorkload::view(int uow) const {
  Viewport v = base_view;
  v.x0 += uow * pan_step;
  // Wrap around rather than fall off the slide during long pans.
  if (slide != nullptr && v.x0 + v.w > slide->width_px()) {
    v.x0 = (v.x0 + v.w) % slide->width_px();
    if (v.x0 + v.w > slide->width_px()) v.x0 = 0;
  }
  return v;
}

std::vector<std::uint8_t> direct_viewport(const Slide& slide, const Viewport& v) {
  validate_view(slide, v);
  const int ow = v.w / v.zoom, oh = v.h / v.zoom;
  std::vector<std::uint8_t> frame(static_cast<std::size_t>(ow) *
                                  static_cast<std::size_t>(oh));
  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      unsigned sum = 0;
      for (int dy = 0; dy < v.zoom; ++dy) {
        for (int dx = 0; dx < v.zoom; ++dx) {
          sum += slide.pixel(v.x0 + ox * v.zoom + dx, v.y0 + oy * v.zoom + dy);
        }
      }
      frame[static_cast<std::size_t>(oy) * static_cast<std::size_t>(ow) +
            static_cast<std::size_t>(ox)] =
          static_cast<std::uint8_t>(sum / static_cast<unsigned>(v.zoom * v.zoom));
    }
  }
  return frame;
}

std::uint64_t frame_digest(const std::vector<std::uint8_t>& frame) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : frame) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

// ---------------------------------------------------------------------------
// Filters
// ---------------------------------------------------------------------------

namespace {

class TileReadFilter final : public core::SourceFilter {
 public:
  explicit TileReadFilter(VmWorkload w) : w_(w) {}

  void init(core::FilterContext& ctx) override {
    const Viewport v = w_.view(ctx.uow_index());
    auto all = w_.slide->tiles_on_host(ctx.host(), v.x0, v.y0, v.w, v.h);
    refs_.clear();
    for (std::size_t i = 0; i < all.size(); ++i) {
      if (static_cast<int>(i % static_cast<std::size_t>(ctx.copies_on_host())) ==
          ctx.copy_in_host()) {
        refs_.push_back(all[i]);
      }
    }
    next_ = 0;
  }

  bool step(core::FilterContext& ctx) override {
    if (next_ >= refs_.size()) return false;
    const Slide::TileRef ref = refs_[next_++];
    ctx.read_disk(ref.disk, ref.bytes);
    ctx.charge(w_.cost.decompress_per_byte * static_cast<double>(ref.bytes));
    w_.slide->fill_tile(ref.tx, ref.ty, pixels_);

    TileHeader h;
    h.tx = ref.tx;
    h.ty = ref.ty;
    h.edge = w_.slide->spec().tile_px;
    if (out_.capacity() == 0) out_ = ctx.make_buffer(0);
    if (out_.remaining() < h.packed_bytes()) {
      ctx.write(0, out_);
      out_ = ctx.make_buffer(0);
    }
    if (h.packed_bytes() > out_.capacity()) {
      throw std::runtime_error("TileReadFilter: buffer smaller than one tile");
    }
    out_.push(h);
    out_.append(std::as_bytes(std::span<const std::uint8_t>(pixels_)));
    return next_ < refs_.size();
  }

  void process_eow(core::FilterContext& ctx) override {
    if (out_.size() > 0) {
      ctx.write(0, out_);
      out_ = core::Buffer();
    }
  }

 private:
  VmWorkload w_;
  std::vector<Slide::TileRef> refs_;
  std::size_t next_ = 0;
  std::vector<std::uint8_t> pixels_;
  core::Buffer out_;
};

class ZoomFilter final : public core::Filter {
 public:
  explicit ZoomFilter(VmWorkload w) : w_(w) {}

  void process_buffer(core::FilterContext& ctx, int /*port*/,
                      const core::Buffer& buf) override {
    const Viewport v = w_.view(ctx.uow_index());
    const auto bytes = buf.bytes();
    std::size_t off = 0;
    double input_pixels = 0.0;
    while (off + sizeof(TileHeader) <= bytes.size()) {
      TileHeader h;
      std::memcpy(&h, bytes.data() + off, sizeof(TileHeader));
      if (off + h.packed_bytes() > bytes.size()) {
        throw std::runtime_error("ZoomFilter: truncated tile");
      }
      const auto* px =
          reinterpret_cast<const std::uint8_t*>(bytes.data() + off +
                                                sizeof(TileHeader));
      input_pixels += emit_region(ctx, v, h, px);
      off += h.packed_bytes();
    }
    ctx.charge(w_.cost.zoom_per_input_pixel * input_pixels);
  }

 private:
  /// Subsamples the intersection of tile `h` with the viewport; returns the
  /// number of input pixels consumed.
  double emit_region(core::FilterContext& ctx, const Viewport& v,
                     const TileHeader& h, const std::uint8_t* px) {
    const int edge = h.edge;
    const int tile_x0 = h.tx * edge, tile_y0 = h.ty * edge;
    // Intersection in slide pixels, aligned to zoom blocks (tile edges are
    // zoom-aligned by construction, viewport by validation).
    const int ix0 = std::max(tile_x0, v.x0);
    const int iy0 = std::max(tile_y0, v.y0);
    const int ix1 = std::min(tile_x0 + edge, v.x0 + v.w);
    const int iy1 = std::min(tile_y0 + edge, v.y0 + v.h);
    if (ix0 >= ix1 || iy0 >= iy1) return 0.0;

    RegionHeader r;
    r.ox = (ix0 - v.x0) / v.zoom;
    r.oy = (iy0 - v.y0) / v.zoom;
    r.w = (ix1 - ix0) / v.zoom;
    r.h = (iy1 - iy0) / v.zoom;

    region_.resize(static_cast<std::size_t>(r.w) * static_cast<std::size_t>(r.h));
    for (int oy = 0; oy < r.h; ++oy) {
      for (int ox = 0; ox < r.w; ++ox) {
        unsigned sum = 0;
        for (int dy = 0; dy < v.zoom; ++dy) {
          const int sy = iy0 + oy * v.zoom + dy - tile_y0;
          for (int dx = 0; dx < v.zoom; ++dx) {
            const int sx = ix0 + ox * v.zoom + dx - tile_x0;
            sum += px[static_cast<std::size_t>(sy) *
                          static_cast<std::size_t>(edge) +
                      static_cast<std::size_t>(sx)];
          }
        }
        region_[static_cast<std::size_t>(oy) * static_cast<std::size_t>(r.w) +
                static_cast<std::size_t>(ox)] =
            static_cast<std::uint8_t>(sum /
                                      static_cast<unsigned>(v.zoom * v.zoom));
      }
    }

    core::Buffer out = ctx.make_buffer(0);
    if (r.packed_bytes() > out.capacity()) {
      throw std::runtime_error("ZoomFilter: buffer smaller than one region");
    }
    out.push(r);
    out.append(std::as_bytes(std::span<const std::uint8_t>(region_)));
    ctx.write(0, out);
    return static_cast<double>((ix1 - ix0)) * static_cast<double>(iy1 - iy0);
  }

  VmWorkload w_;
  std::vector<std::uint8_t> region_;
};

class StitchFilter final : public core::Filter {
 public:
  StitchFilter(VmWorkload w, std::shared_ptr<VmSink> sink)
      : w_(w), sink_(std::move(sink)) {}

  void init(core::FilterContext& ctx) override {
    const Viewport v = w_.view(ctx.uow_index());
    ow_ = v.w / v.zoom;
    oh_ = v.h / v.zoom;
    frame_.assign(static_cast<std::size_t>(ow_) * static_cast<std::size_t>(oh_),
                  0);
    ctx.charge(0.1 * w_.cost.stitch_per_output_pixel *
               static_cast<double>(frame_.size()));
  }

  void process_buffer(core::FilterContext& ctx, int /*port*/,
                      const core::Buffer& buf) override {
    const auto bytes = buf.bytes();
    std::size_t off = 0;
    double pixels = 0.0;
    while (off + sizeof(RegionHeader) <= bytes.size()) {
      RegionHeader r;
      std::memcpy(&r, bytes.data() + off, sizeof(RegionHeader));
      if (off + r.packed_bytes() > bytes.size()) {
        throw std::runtime_error("StitchFilter: truncated region");
      }
      const auto* px = reinterpret_cast<const std::uint8_t*>(
          bytes.data() + off + sizeof(RegionHeader));
      for (int y = 0; y < r.h; ++y) {
        std::memcpy(frame_.data() +
                        static_cast<std::size_t>(r.oy + y) *
                            static_cast<std::size_t>(ow_) +
                        static_cast<std::size_t>(r.ox),
                    px + static_cast<std::size_t>(y) * static_cast<std::size_t>(r.w),
                    static_cast<std::size_t>(r.w));
      }
      pixels += static_cast<double>(r.w) * static_cast<double>(r.h);
      off += r.packed_bytes();
    }
    ctx.charge(w_.cost.stitch_per_output_pixel * pixels);
  }

  void process_eow(core::FilterContext&) override {
    sink_->out_w = ow_;
    sink_->out_h = oh_;
    sink_->digests.push_back(frame_digest(frame_));
    sink_->frames.push_back(std::move(frame_));
  }

 private:
  VmWorkload w_;
  std::shared_ptr<VmSink> sink_;
  int ow_ = 0, oh_ = 0;
  std::vector<std::uint8_t> frame_;
};

}  // namespace

VmApp build_vm_app(const VmWorkload& workload, const std::vector<int>& data_hosts,
                   const std::vector<std::pair<int, int>>& zoom_hosts,
                   int stitch_host, std::size_t buffer_bytes) {
  if (workload.slide == nullptr) {
    throw std::invalid_argument("build_vm_app: missing slide");
  }
  validate_view(*workload.slide, workload.base_view);
  VmApp app;
  app.sink = std::make_shared<VmSink>();
  const VmWorkload w = workload;
  auto sink = app.sink;

  const int reader = app.graph.add_source(
      "TileRead", [w] { return std::make_unique<TileReadFilter>(w); });
  const int zoom = app.graph.add_filter(
      "Zoom", [w] { return std::make_unique<ZoomFilter>(w); });
  const int stitch = app.graph.add_filter(
      "Stitch", [w, sink] { return std::make_unique<StitchFilter>(w, sink); });
  app.graph.connect(reader, 0, zoom, 0, buffer_bytes, buffer_bytes);
  app.graph.connect(zoom, 0, stitch, 0, buffer_bytes, buffer_bytes);

  for (int h : data_hosts) app.placement.place(reader, h);
  for (const auto& [host, copies] : zoom_hosts) {
    app.placement.place(zoom, host, copies);
  }
  app.placement.place(stitch, stitch_host);
  return app;
}

VmRun run_vm_app(sim::Topology& topo, const VmWorkload& workload,
                 const std::vector<int>& data_hosts,
                 const std::vector<std::pair<int, int>>& zoom_hosts,
                 int stitch_host, const core::RuntimeConfig& rt_config, int uows) {
  VmApp app = build_vm_app(workload, data_hosts, zoom_hosts, stitch_host);
  core::Runtime rt(topo, app.graph, app.placement, rt_config);
  VmRun run;
  run.sink = app.sink;
  for (int u = 0; u < uows; ++u) run.per_uow.push_back(rt.run_uow());
  sim::SimTime sum = 0.0;
  for (sim::SimTime t : run.per_uow) sum += t;
  run.avg = run.per_uow.empty() ? 0.0
                                : sum / static_cast<double>(run.per_uow.size());
  run.metrics = rt.metrics();
  return run;
}

}  // namespace dc::vm
