#include "obs/recorder.hpp"

#include <algorithm>

namespace dc::obs {

Track::Track(TraceSession* session, std::string label, std::size_t capacity)
    : session_(session), label_(std::move(label)) {
  ring_.resize(capacity == 0 ? 1 : capacity);
}

void Track::push(EventKind kind, double t, const char* name, std::int64_t a0,
                 std::int64_t a1) {
  if (!session_->enabled()) return;  // the one branch on the disabled path
  Event e;
  e.seq = session_->next_seq();
  e.t = t;
  e.a0 = a0;
  e.a1 = a1;
  e.name = name;
  e.kind = kind;
  std::lock_guard<std::mutex> lk(mu_);
  if (count_ == ring_.size()) {
    ++dropped_;  // drop-oldest: the write cursor sits on the oldest event
  } else {
    ++count_;
  }
  ring_[next_] = e;
  next_ = (next_ + 1) % ring_.size();
}

std::vector<Event> Track::events() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<Event> out;
  out.reserve(count_);
  // When full, the oldest event is at next_; otherwise the ring has never
  // wrapped and events start at 0.
  const std::size_t start = count_ == ring_.size() ? next_ : 0;
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t Track::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return dropped_;
}

std::size_t Track::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return count_;
}

TraceSession::TraceSession(TraceOptions opts)
    : opts_(opts),
      enabled_(opts.enabled),
      epoch_(std::chrono::steady_clock::now()) {}

Track& TraceSession::track(const std::string& label) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = by_label_.find(label);
  if (it != by_label_.end()) return *it->second;
  tracks_.emplace_back(this, label, opts_.track_capacity);
  Track* t = &tracks_.back();
  by_label_.emplace(label, t);
  allocations_.fetch_add(1, std::memory_order_relaxed);
  return *t;
}

double TraceSession::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

double TraceSession::seconds(std::chrono::steady_clock::time_point tp) const {
  return std::chrono::duration<double>(tp - epoch_).count();
}

std::vector<const Track*> TraceSession::tracks() const {
  std::vector<const Track*> out;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const Track& t : tracks_) out.push_back(&t);
  }
  std::sort(out.begin(), out.end(), [](const Track* a, const Track* b) {
    return a->label() < b->label();
  });
  return out;
}

std::vector<Event> TraceSession::ordered_events() const {
  std::vector<Event> out;
  for (const Track* t : tracks()) {
    const std::vector<Event> ev = t->events();
    out.insert(out.end(), ev.begin(), ev.end());
  }
  std::sort(out.begin(), out.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });
  return out;
}

std::uint64_t TraceSession::dropped_events() const {
  std::uint64_t total = 0;
  for (const Track* t : tracks()) total += t->dropped();
  return total;
}

std::uint64_t TraceSession::event_count() const {
  std::uint64_t total = 0;
  for (const Track* t : tracks()) total += t->size();
  return total;
}

}  // namespace dc::obs
