#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace dc::obs {

/// Unified named-counter registry: the single export surface for all of the
/// repo's metrics vocabularies. The legacy structs (core::Metrics,
/// exec::Metrics, io::IoMetrics) stay the engines' internal ledgers and feed
/// the registry at finalize through their publish() overloads; benches and
/// examples then emit ONE machine-readable JSON object instead of three
/// dialects.
///
/// Names are dotted paths ("exec.stream.RE->Ra.payload_bytes"); values are
/// either exact 64-bit integers (counters, byte ledgers — the conservation
/// tests compare these with ==) or doubles (durations, rates). to_json()
/// renders a flat, key-sorted object, deterministic for golden/schema tests.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  void set(const std::string& name, std::int64_t v);
  void set(const std::string& name, std::uint64_t v);
  void set(const std::string& name, double v);
  void add(const std::string& name, std::int64_t v);
  void add(const std::string& name, std::uint64_t v);
  void add(const std::string& name, double v);

  [[nodiscard]] bool has(const std::string& name) const;
  /// 0 when absent.
  [[nodiscard]] double value(const std::string& name) const;
  /// Exact for integer cells; truncates double cells. 0 when absent.
  [[nodiscard]] std::int64_t value_int(const std::string& name) const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::vector<std::string> names() const;  ///< sorted

  /// {"a.b":1,"a.c":2.5,...} with keys sorted; integers print exactly,
  /// doubles via shortest-ish %g, non-finite values as null.
  [[nodiscard]] std::string to_json() const;

  void clear();

 private:
  struct Cell {
    bool is_int = true;
    std::int64_t i = 0;
    double d = 0.0;
  };

  mutable std::mutex mu_;
  std::map<std::string, Cell> cells_;  ///< ordered => deterministic JSON
};

}  // namespace dc::obs
