#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dc::obs::json {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

const Value* Value::find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

struct Parser {
  const char* p;
  const char* end;
  std::string error;

  void skip_ws() {
    while (p != end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }

  bool fail(const std::string& msg) {
    error = msg;
    return false;
  }

  bool literal(const char* word) {
    for (const char* w = word; *w != '\0'; ++w, ++p) {
      if (p == end || *p != *w) return fail(std::string("expected ") + word);
    }
    return true;
  }

  bool parse_string(std::string& out) {
    if (p == end || *p != '"') return fail("expected string");
    ++p;
    out.clear();
    while (p != end && *p != '"') {
      char c = *p++;
      if (c == '\\') {
        if (p == end) return fail("unterminated escape");
        const char esc = *p++;
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u': {
            if (end - p < 4) return fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = *p++;
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            // Validation-oriented: non-ASCII escapes keep a placeholder.
            c = code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default: return fail("unknown escape");
        }
      }
      out += c;
    }
    if (p == end) return fail("unterminated string");
    ++p;  // closing quote
    return true;
  }

  bool parse_value(Value& out) {
    skip_ws();
    if (p == end) return fail("unexpected end of input");
    switch (*p) {
      case '{': {
        ++p;
        out.type = Value::Type::kObject;
        skip_ws();
        if (p != end && *p == '}') { ++p; return true; }
        for (;;) {
          skip_ws();
          std::string key;
          if (!parse_string(key)) return false;
          skip_ws();
          if (p == end || *p != ':') return fail("expected ':'");
          ++p;
          Value v;
          if (!parse_value(v)) return false;
          out.object.emplace_back(std::move(key), std::move(v));
          skip_ws();
          if (p != end && *p == ',') { ++p; continue; }
          if (p != end && *p == '}') { ++p; return true; }
          return fail("expected ',' or '}'");
        }
      }
      case '[': {
        ++p;
        out.type = Value::Type::kArray;
        skip_ws();
        if (p != end && *p == ']') { ++p; return true; }
        for (;;) {
          Value v;
          if (!parse_value(v)) return false;
          out.array.push_back(std::move(v));
          skip_ws();
          if (p != end && *p == ',') { ++p; continue; }
          if (p != end && *p == ']') { ++p; return true; }
          return fail("expected ',' or ']'");
        }
      }
      case '"':
        out.type = Value::Type::kString;
        return parse_string(out.str);
      case 't':
        out.type = Value::Type::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.type = Value::Type::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.type = Value::Type::kNull;
        return literal("null");
      default: {
        // Number. Strict-ish: must start with '-' or digit (rejects the
        // "nan"/"inf"/"+1" spellings printf can produce).
        if (*p != '-' && (std::isdigit(static_cast<unsigned char>(*p)) == 0)) {
          return fail("unexpected character");
        }
        const char* first_digit = *p == '-' ? p + 1 : p;
        if (first_digit != end && *first_digit == '0' &&
            first_digit + 1 != end &&
            std::isdigit(static_cast<unsigned char>(first_digit[1])) != 0) {
          return fail("leading zero in number");
        }
        char* num_end = nullptr;
        const double v = std::strtod(p, &num_end);
        if (num_end == p) return fail("bad number");
        if (!std::isfinite(v)) return fail("non-finite number");
        out.type = Value::Type::kNumber;
        out.num = v;
        p = num_end;
        return true;
      }
    }
  }
};

}  // namespace

bool parse(const std::string& text, Value& out, std::string* error) {
  Parser parser{text.data(), text.data() + text.size(), {}};
  out = Value{};
  const bool ok = parser.parse_value(out);
  if (ok) {
    parser.skip_ws();
    if (parser.p != parser.end) {
      if (error != nullptr) *error = "trailing garbage after JSON value";
      return false;
    }
    return true;
  }
  if (error != nullptr) {
    *error = parser.error + " at offset " +
             std::to_string(parser.p - text.data());
  }
  return false;
}

}  // namespace dc::obs::json
