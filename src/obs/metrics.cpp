#include "obs/metrics.hpp"

#include "obs/json.hpp"

namespace dc::obs {

void MetricsRegistry::set(const std::string& name, std::int64_t v) {
  std::lock_guard<std::mutex> lk(mu_);
  cells_[name] = Cell{true, v, 0.0};
}

void MetricsRegistry::set(const std::string& name, std::uint64_t v) {
  set(name, static_cast<std::int64_t>(v));
}

void MetricsRegistry::set(const std::string& name, double v) {
  std::lock_guard<std::mutex> lk(mu_);
  cells_[name] = Cell{false, 0, v};
}

void MetricsRegistry::add(const std::string& name, std::int64_t v) {
  std::lock_guard<std::mutex> lk(mu_);
  Cell& c = cells_[name];
  if (c.is_int) {
    c.i += v;
  } else {
    c.d += static_cast<double>(v);
  }
}

void MetricsRegistry::add(const std::string& name, std::uint64_t v) {
  add(name, static_cast<std::int64_t>(v));
}

void MetricsRegistry::add(const std::string& name, double v) {
  std::lock_guard<std::mutex> lk(mu_);
  Cell& c = cells_[name];
  if (c.is_int && c.i == 0) {
    // Fresh (or still-zero) cell promoted to double.
    c.is_int = false;
    c.d = v;
  } else if (c.is_int) {
    c.is_int = false;
    c.d = static_cast<double>(c.i) + v;
  } else {
    c.d += v;
  }
}

bool MetricsRegistry::has(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  return cells_.find(name) != cells_.end();
}

double MetricsRegistry::value(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = cells_.find(name);
  if (it == cells_.end()) return 0.0;
  return it->second.is_int ? static_cast<double>(it->second.i) : it->second.d;
}

std::int64_t MetricsRegistry::value_int(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = cells_.find(name);
  if (it == cells_.end()) return 0;
  return it->second.is_int ? it->second.i
                           : static_cast<std::int64_t>(it->second.d);
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return cells_.size();
}

std::vector<std::string> MetricsRegistry::names() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> out;
  out.reserve(cells_.size());
  for (const auto& [name, cell] : cells_) out.push_back(name);
  return out;
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out = "{";
  bool first = true;
  for (const auto& [name, cell] : cells_) {
    if (!first) out += ",";
    first = false;
    out += '"';
    out += json::escape(name);
    out += "\":";
    out += cell.is_int ? std::to_string(cell.i) : json::number(cell.d);
  }
  out += "}";
  return out;
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  cells_.clear();
}

}  // namespace dc::obs
