#pragma once

#include <cstdint>

namespace dc::obs {

/// Kind of one recorded event, mirroring the Chrome trace-event phases the
/// exporter maps them to (B / E / i / C).
enum class EventKind : std::uint8_t {
  kBegin,    ///< span opens on its track
  kEnd,      ///< span closes on its track
  kInstant,  ///< point event
  kCounter,  ///< sampled counter value (a0 carries the value)
};

[[nodiscard]] inline const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kBegin: return "B";
    case EventKind::kEnd: return "E";
    case EventKind::kInstant: return "i";
    case EventKind::kCounter: return "C";
  }
  return "?";
}

/// One recorded event. Fixed-size and string-free: `name` must point to a
/// string with static storage duration (in practice, a literal), so recording
/// never allocates and ring-buffer slots are trivially reusable. `t` is
/// seconds — wall seconds since the session epoch for native emitters,
/// virtual seconds for the simulator — and `seq` is the session-global
/// sequence number, the only ordering golden tests may rely on (wall-clock
/// timestamps are not reproducible).
struct Event {
  std::uint64_t seq = 0;
  double t = 0.0;
  std::int64_t a0 = 0;  ///< event argument (counter value for kCounter)
  std::int64_t a1 = 0;
  const char* name = "";
  EventKind kind = EventKind::kInstant;
};

}  // namespace dc::obs
