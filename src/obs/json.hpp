#pragma once

#include <string>
#include <utility>
#include <vector>

namespace dc::obs::json {

/// Escapes a string for inclusion inside JSON double quotes.
[[nodiscard]] std::string escape(const std::string& s);

/// Formats a double as a JSON number. Non-finite values have no JSON
/// representation; they are emitted as null (the schema checks treat that as
/// a broken metric, which is the point).
[[nodiscard]] std::string number(double v);

/// Minimal strict JSON value for the bench-schema checks and trace tests:
/// objects (insertion-ordered), arrays, strings, finite numbers, booleans,
/// null. Not a general-purpose library — just enough to validate what this
/// repo emits.
struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };
  Type type = Type::kNull;
  bool boolean = false;
  double num = 0.0;
  std::string str;
  std::vector<std::pair<std::string, Value>> object;
  std::vector<Value> array;

  [[nodiscard]] bool is_object() const { return type == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type == Type::kArray; }
  [[nodiscard]] bool is_number() const { return type == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type == Type::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(const std::string& key) const;
};

/// Parses `text` into `out`. Returns false (and fills `error` when non-null)
/// on any syntax violation, trailing garbage, or non-finite number — "every
/// number is finite" is part of the grammar here by design.
bool parse(const std::string& text, Value& out, std::string* error = nullptr);

}  // namespace dc::obs::json
