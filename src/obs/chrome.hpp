#pragma once

#include <ostream>
#include <string>

#include "obs/recorder.hpp"

namespace dc::obs {

/// Writes the session as one Chrome trace-event JSON object, loadable in
/// Perfetto (ui.perfetto.dev) or chrome://tracing. Each track becomes a
/// thread lane (tid = track index in label order, named via thread_name
/// metadata); kBegin/kEnd map to "B"/"E" spans, kInstant to thread-scoped
/// "i", kCounter to "C". Timestamps are the recorded seconds * 1e6 — wall
/// microseconds for native emitters, virtual microseconds for the simulator
/// — so a mixed capture renders both engines on the same timeline.
void write_chrome_trace(const TraceSession& session, std::ostream& os);

/// File convenience; returns false when the file cannot be written.
bool write_chrome_trace(const TraceSession& session, const std::string& path);

}  // namespace dc::obs
