#include "obs/chrome.hpp"

#include <algorithm>
#include <fstream>

#include "obs/json.hpp"

namespace dc::obs {

namespace {

void write_event(std::ostream& os, const Event& e, std::size_t tid,
                 bool& first) {
  if (!first) os << ",\n";
  first = false;
  os << "{\"name\":\"" << json::escape(e.name) << "\",\"ph\":\""
     << to_string(e.kind) << "\",\"ts\":" << json::number(e.t * 1e6)
     << ",\"pid\":0,\"tid\":" << tid;
  switch (e.kind) {
    case EventKind::kInstant:
      os << ",\"s\":\"t\",\"args\":{\"a0\":" << e.a0 << ",\"a1\":" << e.a1
         << "}";
      break;
    case EventKind::kCounter:
      os << ",\"args\":{\"value\":" << e.a0 << "}";
      break;
    case EventKind::kBegin:
      os << ",\"args\":{\"a0\":" << e.a0 << ",\"a1\":" << e.a1 << "}";
      break;
    case EventKind::kEnd:
      break;  // args belong to the matching B event
  }
  os << "}";
}

}  // namespace

void write_chrome_trace(const TraceSession& session, std::ostream& os) {
  const std::vector<const Track*> tracks = session.tracks();
  os << "{\"traceEvents\":[\n";
  bool first = true;
  for (std::size_t tid = 0; tid < tracks.size(); ++tid) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
       << ",\"args\":{\"name\":\"" << json::escape(tracks[tid]->label())
       << "\"}}";
  }
  for (std::size_t tid = 0; tid < tracks.size(); ++tid) {
    std::vector<Event> events = tracks[tid]->events();
    // Ring order is emission order per track, but a shared track written by
    // several threads can interleave slightly out of time order; viewers
    // want ts-sorted input. Stable on (t, seq).
    std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
      return a.t != b.t ? a.t < b.t : a.seq < b.seq;
    });
    for (const Event& e : events) write_event(os, e, tid, first);
  }
  os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
     << "\"dropped_events\":" << session.dropped_events() << "}}\n";
}

bool write_chrome_trace(const TraceSession& session, const std::string& path) {
  std::ofstream os(path);
  if (!os.good()) return false;
  write_chrome_trace(session, os);
  os.flush();
  return os.good();
}

}  // namespace dc::obs
