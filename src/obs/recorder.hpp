#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/event.hpp"

namespace dc::obs {

class TraceSession;

/// One lane of a trace: a bounded ring buffer of events plus a label. Tracks
/// map onto Chrome-trace threads, and the intended usage is single-writer —
/// one track per engine worker thread / disk scheduler thread — but emission
/// is fully thread-safe (a mutex per track; shared tracks like the io
/// reader's are written by many filter threads).
///
/// Cost contract: when the owning session is disabled, every emit returns
/// after ONE relaxed atomic load and branch — no lock, no clock, no
/// allocation. When enabled, emits write into the preallocated ring and
/// still never allocate; a full ring drops the OLDEST event and counts it
/// in dropped() instead of growing.
class Track {
 public:
  Track(TraceSession* session, std::string label, std::size_t capacity);

  Track(const Track&) = delete;
  Track& operator=(const Track&) = delete;

  void begin(double t, const char* name, std::int64_t a0 = 0,
             std::int64_t a1 = 0) {
    push(EventKind::kBegin, t, name, a0, a1);
  }
  void end(double t, const char* name, std::int64_t a0 = 0,
           std::int64_t a1 = 0) {
    push(EventKind::kEnd, t, name, a0, a1);
  }
  void instant(double t, const char* name, std::int64_t a0 = 0,
               std::int64_t a1 = 0) {
    push(EventKind::kInstant, t, name, a0, a1);
  }
  void counter(double t, const char* name, std::int64_t value) {
    push(EventKind::kCounter, t, name, value, 0);
  }

  [[nodiscard]] const std::string& label() const { return label_; }
  /// Snapshot of the retained events, oldest first.
  [[nodiscard]] std::vector<Event> events() const;
  /// Events overwritten because the ring was full (drop-oldest).
  [[nodiscard]] std::uint64_t dropped() const;
  /// Events currently retained (<= capacity).
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }

 private:
  void push(EventKind kind, double t, const char* name, std::int64_t a0,
            std::int64_t a1);

  TraceSession* session_;
  std::string label_;
  mutable std::mutex mu_;
  std::vector<Event> ring_;  ///< preallocated; never resized after ctor
  std::size_t next_ = 0;     ///< write cursor
  std::size_t count_ = 0;    ///< valid events
  std::uint64_t dropped_ = 0;
};

/// Tuning of one TraceSession.
struct TraceOptions {
  std::size_t track_capacity = 16 * 1024;  ///< events per track ring buffer
  bool enabled = true;                     ///< initial state
};

/// One tracing session: a set of named tracks sharing an enable switch, a
/// global sequence counter, and a wall-clock epoch. Both execution engines
/// and the io layer emit into the same session, so one capture renders the
/// whole pipeline — simulator lanes in virtual time, native lanes in wall
/// time — on a single Perfetto timeline (see obs::write_chrome_trace).
///
/// Creating a track allocates (counted in allocation_count(), which the
/// overhead tests use to assert the emit path allocates nothing); emitting
/// never does.
class TraceSession {
 public:
  explicit TraceSession(TraceOptions opts = {});

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Create-or-get the track with this label (stable address for the
  /// session's lifetime).
  Track& track(const std::string& label);

  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Wall seconds since the session epoch (native emitters' time base).
  [[nodiscard]] double now() const;
  /// Converts a steady_clock time point to session seconds.
  [[nodiscard]] double seconds(std::chrono::steady_clock::time_point tp) const;

  [[nodiscard]] std::uint64_t next_seq() {
    return seq_.fetch_add(1, std::memory_order_relaxed);
  }

  /// All tracks, sorted by label (deterministic for tests/export).
  [[nodiscard]] std::vector<const Track*> tracks() const;
  /// All retained events across tracks, merged and sorted by seq.
  [[nodiscard]] std::vector<Event> ordered_events() const;

  [[nodiscard]] std::uint64_t dropped_events() const;
  [[nodiscard]] std::uint64_t event_count() const;
  /// Number of obs-owned heap allocations (track creations). Stable across
  /// any number of emits — the disabled-path / hot-path no-allocation
  /// contract is asserted against this counter.
  [[nodiscard]] std::uint64_t allocation_count() const {
    return allocations_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const TraceOptions& options() const { return opts_; }

 private:
  TraceOptions opts_;
  std::atomic<bool> enabled_;
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> allocations_{0};
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;               ///< guards tracks_/by_label_
  std::deque<Track> tracks_;            ///< stable addresses
  std::unordered_map<std::string, Track*> by_label_;
};

/// RAII span on a track: begin at construction, end at destruction, in the
/// session's wall clock. Null-safe: with a null track it does nothing.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(TraceSession* session, Track* track, const char* name,
             std::int64_t a0 = 0, std::int64_t a1 = 0)
      : session_(session), track_(track), name_(name) {
    if (track_ != nullptr && session_->enabled()) {
      track_->begin(session_->now(), name_, a0, a1);
      open_ = true;
    }
  }
  ~ScopedSpan() {
    if (open_) track_->end(session_->now(), name_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceSession* session_ = nullptr;
  Track* track_ = nullptr;
  const char* name_ = "";
  bool open_ = false;
};

}  // namespace dc::obs
