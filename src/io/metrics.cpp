#include "io/metrics.hpp"

#include "obs/metrics.hpp"

namespace dc::io {

void publish(const IoMetrics& m, obs::MetricsRegistry& reg,
             const std::string& prefix) {
  reg.set(prefix + ".read_calls", m.read_calls);
  reg.set(prefix + ".read_wait_s", m.read_wait_s);

  const std::string cache = prefix + ".cache.";
  reg.set(cache + "hits", m.cache.hits);
  reg.set(cache + "misses", m.cache.misses);
  reg.set(cache + "evictions", m.cache.evictions);
  reg.set(cache + "insertions", m.cache.insertions);
  reg.set(cache + "readahead_hits", m.cache.readahead_hits);
  reg.set(cache + "prefetch_issued", m.cache.prefetch_issued);
  reg.set(cache + "prefetch_dropped", m.cache.prefetch_dropped);
  reg.set(cache + "bytes_cached", m.cache.bytes_cached);
  reg.set(cache + "resident_blocks", m.cache.resident_blocks);

  reg.set(prefix + ".disks", static_cast<std::int64_t>(m.disks.size()));
  std::uint64_t requests = 0, bytes = 0;
  double queue_wait = 0.0, service = 0.0;
  for (const auto& d : m.disks) {
    requests += d.requests;
    bytes += d.bytes;
    queue_wait += d.queue_wait_s;
    service += d.service_s;
    const std::string base = prefix + ".disk.h" + std::to_string(d.host) +
                             ".d" + std::to_string(d.disk);
    reg.set(base + ".requests", d.requests);
    reg.set(base + ".bytes", d.bytes);
    reg.set(base + ".queue_wait_s", d.queue_wait_s);
    reg.set(base + ".service_s", d.service_s);
    reg.set(base + ".max_queue_depth",
            static_cast<std::uint64_t>(d.max_queue_depth));
  }
  reg.set(prefix + ".requests", requests);
  reg.set(prefix + ".bytes", bytes);
  reg.set(prefix + ".queue_wait_s", queue_wait);
  reg.set(prefix + ".service_s", service);
}

}  // namespace dc::io
