#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "io/chunk_store.hpp"
#include "io/metrics.hpp"
#include "obs/recorder.hpp"

namespace dc::io {

/// Completion slot of one read request. The submitter waits on `cv` until
/// `done`; `data` holds the payload (shared so the block cache and several
/// waiting readers can alias it), `error` is non-empty on failure.
struct IoSlot {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::shared_ptr<const std::vector<std::byte>> data;
  std::string error;

  /// Blocks until completion; returns seconds spent waiting. Throws
  /// std::runtime_error on a failed read.
  std::shared_ptr<const std::vector<std::byte>> wait(double& waited_s);
};

/// One read request against an open store file.
struct IoRequest {
  int fd = -1;
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  std::uint64_t checksum = 0;
  bool verify = true;
  std::shared_ptr<IoSlot> slot;
  /// Invoked on the scheduler thread after the slot is completed (data is
  /// null on failure). The ChunkReader uses it to publish the block to the
  /// cache and retire the in-flight entry — prefetches have no waiter, so
  /// completion must not depend on anyone calling slot->wait().
  std::function<void(std::shared_ptr<const std::vector<std::byte>>)> on_complete;
};

/// Tuning knobs of one scheduler thread.
struct SchedulerOptions {
  std::size_t queue_capacity = 64;  ///< bounded request queue
  /// Added to every request's service time. Zero for production; benchmarks
  /// set it to emulate device latency when the files sit in the page cache
  /// (otherwise every read returns in microseconds and readahead has nothing
  /// to hide).
  std::chrono::microseconds simulated_latency{0};
  /// Optional observability session. When set, the scheduler thread records
  /// one "io.read" span per served request (a0 = bytes, a1 = queue depth at
  /// submit) on a per-disk track. Must outlive the scheduler.
  obs::TraceSession* trace = nullptr;
};

/// One I/O scheduler thread per simulated disk — the storage-side mirror of
/// exec::Engine's one-thread-per-copy design. Requests are served FIFO from
/// a bounded queue; submit() blocks when the queue is full (backpressure on
/// the producer) unless the caller asks to drop instead (prefetch hints are
/// droppable, demand reads are not).
class DiskScheduler {
 public:
  DiskScheduler(DiskId id, SchedulerOptions opts);
  ~DiskScheduler();

  DiskScheduler(const DiskScheduler&) = delete;
  DiskScheduler& operator=(const DiskScheduler&) = delete;

  /// Enqueues `req`. With `drop_if_full`, returns false instead of blocking
  /// when the queue is at capacity (the request is not enqueued).
  bool submit(IoRequest req, bool drop_if_full = false);

  [[nodiscard]] DiskMetrics metrics() const;
  [[nodiscard]] DiskId id() const { return id_; }

 private:
  void thread_main();
  void serve(IoRequest& req, double queue_wait);

  DiskId id_;
  SchedulerOptions opts_;
  obs::Track* otrack_ = nullptr;  ///< per-disk lane; null when not tracing

  mutable std::mutex mu_;
  std::condition_variable work_;   ///< scheduler: queue non-empty or stopping
  std::condition_variable space_;  ///< producers: queue below capacity
  std::deque<std::pair<IoRequest, std::chrono::steady_clock::time_point>> queue_;
  bool stop_ = false;
  DiskMetrics metrics_;

  std::thread thread_;
};

}  // namespace dc::io
