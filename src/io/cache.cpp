#include "io/cache.hpp"

#include <stdexcept>

namespace dc::io {

BlockCache::BlockCache(std::size_t capacity_bytes) : capacity_(capacity_bytes) {
  if (capacity_ == 0) {
    throw std::invalid_argument("BlockCache: capacity must be > 0");
  }
}

std::shared_ptr<const std::vector<std::byte>> BlockCache::get(
    std::uint64_t key, bool* from_prefetch) {
  std::lock_guard<std::mutex> lk(mu_);
  if (from_prefetch != nullptr) *from_prefetch = false;
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++metrics_.misses;
    return nullptr;
  }
  ++metrics_.hits;
  Entry& e = *it->second;
  if (e.from_prefetch) {
    // First demand hit on a prefetched block: the readahead paid off once.
    e.from_prefetch = false;
    ++metrics_.readahead_hits;
    if (from_prefetch != nullptr) *from_prefetch = true;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  return e.data;
}

void BlockCache::put(std::uint64_t key,
                     std::shared_ptr<const std::vector<std::byte>> data,
                     bool from_prefetch) {
  std::lock_guard<std::mutex> lk(mu_);
  if (map_.find(key) != map_.end()) return;
  bytes_ += data->size();
  lru_.push_front(Entry{key, std::move(data), from_prefetch});
  map_[key] = lru_.begin();
  ++metrics_.insertions;
  evict_locked();
  metrics_.bytes_cached = bytes_;
  metrics_.resident_blocks = lru_.size();
}

void BlockCache::evict_locked() {
  while (bytes_ > capacity_ && lru_.size() > 1) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.data->size();
    map_.erase(victim.key);
    lru_.pop_back();
    ++metrics_.evictions;
  }
}

bool BlockCache::contains(std::uint64_t key) const {
  std::lock_guard<std::mutex> lk(mu_);
  return map_.find(key) != map_.end();
}

void BlockCache::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  // Dropped blocks are evictions too: clear() must keep the conservation
  // invariant insertions - evictions == resident_blocks.
  metrics_.evictions += lru_.size();
  lru_.clear();
  map_.clear();
  bytes_ = 0;
  metrics_.bytes_cached = 0;
  metrics_.resident_blocks = 0;
}

CacheMetrics BlockCache::metrics() const {
  std::lock_guard<std::mutex> lk(mu_);
  return metrics_;
}

}  // namespace dc::io
