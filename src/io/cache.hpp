#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "io/metrics.hpp"

namespace dc::io {

/// Thread-safe LRU block cache keyed by (chunk, timestep), holding shared
/// immutable payloads. Capacity is in payload bytes; inserting past capacity
/// evicts from the cold end. A single oversized block is still admitted
/// (the cache then holds just that block) so readers never spin on an
/// uncacheable chunk.
class BlockCache {
 public:
  explicit BlockCache(std::size_t capacity_bytes);

  /// nullptr on miss. `from_prefetch` (when non-null) reports whether this
  /// block was brought in by a prefetch and this is the first demand hit on
  /// it — the signal IoMetrics counts as a readahead hit.
  std::shared_ptr<const std::vector<std::byte>> get(std::uint64_t key,
                                                    bool* from_prefetch = nullptr);

  /// Inserts a block. No-op if the key is already resident: the entry keeps
  /// its LRU position and its from_prefetch flag (recency is refreshed by
  /// get(), not by re-insertion).
  void put(std::uint64_t key, std::shared_ptr<const std::vector<std::byte>> data,
           bool from_prefetch);

  /// Residency probe that does not touch the hit/miss counters or the LRU
  /// order (used to avoid issuing redundant prefetches).
  [[nodiscard]] bool contains(std::uint64_t key) const;

  /// Drops every block (for cold-cache benchmarking).
  void clear();

  [[nodiscard]] CacheMetrics metrics() const;
  [[nodiscard]] std::size_t capacity_bytes() const { return capacity_; }

 private:
  struct Entry {
    std::uint64_t key = 0;
    std::shared_ptr<const std::vector<std::byte>> data;
    bool from_prefetch = false;
  };

  void evict_locked();

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< front = hottest
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> map_;
  std::size_t bytes_ = 0;
  CacheMetrics metrics_;
};

}  // namespace dc::io
