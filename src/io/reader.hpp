#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "io/cache.hpp"
#include "io/chunk_store.hpp"
#include "io/metrics.hpp"
#include "io/scheduler.hpp"

namespace dc::io {

/// Tuning of one ChunkReader.
struct ReaderOptions {
  std::size_t cache_bytes = 256 * 1024 * 1024;
  std::size_t queue_capacity = 64;  ///< per-disk bounded request queue
  bool verify_checksums = true;
  /// See SchedulerOptions::simulated_latency (benchmarks only).
  std::chrono::microseconds simulated_latency{0};
  /// Optional observability session, forwarded to every DiskScheduler (one
  /// "io.read" span per request on per-disk tracks) and used by the reader
  /// itself for cache.hit / cache.miss / read.join / prefetch.issue /
  /// prefetch.drop instants on an "io:reader" track. Must outlive the reader.
  obs::TraceSession* trace = nullptr;
};

/// The read path of the storage subsystem: resolves (chunk, timestep)
/// through an opened ChunkStore, schedules preads on the owning disk's
/// scheduler thread, caches blocks in a shared LRU, and coalesces duplicate
/// requests (a demand read joins an in-flight prefetch of the same block
/// instead of re-reading it).
///
/// Thread-safe: any number of filter copies may call read()/prefetch()
/// concurrently — exactly the situation under exec::Engine, where every
/// transparent copy runs on its own OS thread.
class ChunkReader {
 public:
  explicit ChunkReader(const ChunkStore& store, ReaderOptions opts = {});
  ~ChunkReader();

  ChunkReader(const ChunkReader&) = delete;
  ChunkReader& operator=(const ChunkReader&) = delete;

  /// Blocking read of one chunk payload. `io_wait_s` (when non-null)
  /// receives the wall seconds this call spent blocked on I/O (0 on a cache
  /// hit). Throws on unknown chunk or a failed/corrupt read.
  std::shared_ptr<const std::vector<std::byte>> read(int chunk, int timestep,
                                                     double* io_wait_s = nullptr);

  /// Asynchronous readahead hint: enqueue the block on its disk's scheduler
  /// unless it is already cached, already in flight, or the disk queue is
  /// full (prefetches are droppable; demand reads are not). Never blocks.
  void prefetch(int chunk, int timestep);

  /// Hints entries [from, from + count) of a planned read sequence — the
  /// sliding readahead window the sequential Read filters maintain (count =
  /// prefetch depth at init, then 1 per consumed chunk to keep the window
  /// full). Accepts plain chunk ids or anything with a `.chunk` member.
  template <typename ChunkId>
  void prefetch_range(const std::vector<ChunkId>& chunks, std::size_t from,
                      int count, int timestep) {
    for (int k = 0; k < count; ++k) {
      const std::size_t i = from + static_cast<std::size_t>(k);
      if (i >= chunks.size()) break;
      prefetch(chunk_id_of(chunks[i]), timestep);
    }
  }

  /// Drops the block cache (cold-cache benchmarking). In-flight requests
  /// are unaffected.
  void drop_cache();

  [[nodiscard]] IoMetrics metrics() const;
  [[nodiscard]] const ChunkStore& store() const { return store_; }
  [[nodiscard]] const ReaderOptions& options() const { return opts_; }

 private:
  struct Flight {
    std::shared_ptr<IoSlot> slot;
    bool prefetch = false;
  };

  static int chunk_id_of(int chunk) { return chunk; }
  template <typename T>
  static auto chunk_id_of(const T& ref) -> decltype(ref.chunk) {
    return ref.chunk;
  }

  IoRequest make_request(const ChunkStore::ChunkHandle& h, std::uint64_t key,
                         std::shared_ptr<IoSlot> slot);

  /// Tracing helper: one null check when detached, one enabled check when
  /// attached. `name` must be a string literal (obs::Event does not copy it).
  void emit_instant(const char* name, int chunk, int timestep) {
    if (otrack_ != nullptr && opts_.trace->enabled()) {
      otrack_->instant(opts_.trace->now(), name, chunk, timestep);
    }
  }

  const ChunkStore& store_;
  ReaderOptions opts_;
  obs::Track* otrack_ = nullptr;  ///< shared reader lane; null when not tracing
  std::unique_ptr<BlockCache> cache_;
  std::vector<std::unique_ptr<DiskScheduler>> schedulers_;  ///< per disk

  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, Flight> in_flight_;
  std::uint64_t read_calls_ = 0;
  std::uint64_t prefetch_issued_ = 0;
  std::uint64_t prefetch_dropped_ = 0;
  std::uint64_t inflight_joins_ = 0;  ///< demand reads that joined a prefetch
  double read_wait_s_ = 0.0;
};

}  // namespace dc::io
