#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace dc::io {

/// Scratch-directory resolution shared by everything that writes transient
/// state: $TMPDIR when set and non-empty, /tmp otherwise. The distributed
/// rank harness (viz) and the spill files below both use this — previously
/// the harness hardcoded /tmp, which broke hosts whose real scratch space is
/// elsewhere (the ISSUE 10 satellite bugfix).
[[nodiscard]] std::filesystem::path temp_root();

/// Point-in-time counters of one SpillFile.
struct SpillStats {
  std::uint64_t records_written = 0;
  std::uint64_t bytes_written = 0;   ///< payload bytes (excl. record headers)
  std::uint64_t records_read = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t live_records = 0;    ///< written but not yet consumed
  std::uint64_t file_high_water_bytes = 0;  ///< max physical file size seen
};

/// Append-only overflow store for one spilling consumer: the disk half of
/// the memory-governed elastic queues (DESIGN §5.7). One SpillFile backs one
/// PortChannel (or one external-sort run set); records are CRC32C-checked
/// variable-size payloads addressed by the token append() returned.
///
/// Lifecycle and durability model:
///   - The backing file is created with mkstemp under `dir` (default
///     temp_root()) and unlinked IMMEDIATELY, so there is no pathname to
///     strand: if the process dies — including SIGKILL mid-UOW, the fault
///     harness's specialty — the kernel reclaims the space when the last
///     descriptor closes. "No stranded spill files" is structural, not
///     cleanup-code-dependent.
///   - append() is called by producers that the governor denied; read()
///     restores the payload (verifying its checksum) when the consumer
///     catches up. Tokens are byte offsets, monotonically increasing, so
///     FIFO re-admission order is the append order by construction.
///   - When every live record has been consumed the file is ftruncate'd to
///     zero and the write cursor rewinds — a long run with episodic pressure
///     reuses the same scratch space instead of growing without bound.
///
/// Thread-safe; callers (the channel) typically already serialize on their
/// own mutex, but sort cursors read concurrently via pread_at().
class SpillFile {
 public:
  /// Opens lazily: no file exists until the first append(). `dir` empty
  /// means temp_root().
  explicit SpillFile(std::filesystem::path dir = {});
  ~SpillFile();

  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  /// Appends one record; returns its token. Throws std::runtime_error on
  /// I/O failure (disk full counts — spill is best-effort infrastructure,
  /// not a place to silently drop data).
  std::uint64_t append(std::span<const std::byte> payload);

  /// Reads and CONSUMES the record at `token` into `out` (resized to the
  /// payload length), verifying its CRC32C. Throws on checksum mismatch or
  /// unknown token. When the last live record is consumed the physical file
  /// is truncated and the cursor rewinds.
  void read(std::uint64_t token, std::vector<std::byte>& out);

  /// Random-access variant for merge cursors: reads `out.size()` bytes of
  /// the record's payload starting at `offset`, without consuming it. The
  /// caller checks integrity via record_crc() once per record (chained
  /// CRC32C over chunked reads).
  void pread_at(std::uint64_t token, std::size_t offset,
                std::span<std::byte> out) const;

  /// Payload length of a live record.
  [[nodiscard]] std::size_t record_bytes(std::uint64_t token) const;
  /// Stored CRC32C of a live record's payload.
  [[nodiscard]] std::uint32_t record_crc(std::uint64_t token) const;

  /// Drops a live record without reading it (abort paths, finished merge
  /// cursors). Unknown tokens are ignored.
  void discard(std::uint64_t token);

  [[nodiscard]] SpillStats stats() const;
  [[nodiscard]] const std::filesystem::path& dir() const { return dir_; }

 private:
  struct Record {
    std::uint64_t offset = 0;  ///< payload start in the file
    std::size_t bytes = 0;
    std::uint32_t crc = 0;
  };

  void ensure_open_locked();
  void maybe_rewind_locked();

  std::filesystem::path dir_;
  mutable std::mutex mu_;
  int fd_ = -1;
  std::uint64_t write_off_ = 0;
  std::uint64_t next_token_ = 0;
  std::map<std::uint64_t, Record> live_;
  SpillStats stats_;
};

}  // namespace dc::io
