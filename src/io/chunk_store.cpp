#include "io/chunk_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <unordered_set>

namespace dc::io {

namespace {

[[nodiscard]] std::uint64_t key_of(int chunk, int timestep) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(chunk)) << 32) |
         static_cast<std::uint32_t>(timestep);
}

}  // namespace

// ---------------------------------------------------------------------------
// ChunkStoreWriter
// ---------------------------------------------------------------------------

struct ChunkStoreWriter::OpenFile {
  std::ofstream out;
  std::filesystem::path path;
  FileHeader header;
  std::vector<ChunkIndexEntry> entries;
  std::unordered_set<std::uint64_t> seen;  ///< key_of(chunk, timestep)
  std::uint64_t cursor = sizeof(FileHeader);
};

ChunkStoreWriter::ChunkStoreWriter(std::filesystem::path root)
    : root_(std::move(root)) {
  std::filesystem::create_directories(root_);
}

ChunkStoreWriter::~ChunkStoreWriter() = default;

ChunkStoreWriter::OpenFile& ChunkStoreWriter::file_for(data::FileLocation loc,
                                                       int file_id) {
  auto it = files_.find(file_id);
  if (it != files_.end()) {
    OpenFile& f = it->second;
    if (f.header.host != loc.host || f.header.disk != loc.disk) {
      throw std::invalid_argument(
          "ChunkStoreWriter: file written with two locations");
    }
    return f;
  }
  OpenFile& f = files_[file_id];
  f.path = root_ / file_relpath(loc.host, loc.disk, file_id);
  std::filesystem::create_directories(f.path.parent_path());
  f.out.open(f.path, std::ios::binary | std::ios::trunc);
  if (!f.out) {
    throw std::runtime_error("ChunkStoreWriter: cannot open " + f.path.string());
  }
  f.header.file_id = file_id;
  f.header.host = loc.host;
  f.header.disk = loc.disk;
  // Placeholder header; rewritten (with the valid magic) by finish(). A file
  // that never reached finish() is rejected on open.
  FileHeader blank;
  f.out.write(reinterpret_cast<const char*>(&blank), sizeof(blank));
  return f;
}

void ChunkStoreWriter::put_chunk(data::FileLocation loc, int file_id, int chunk,
                                 int timestep,
                                 std::span<const std::byte> payload) {
  if (finished_) {
    throw std::logic_error("ChunkStoreWriter: put_chunk after finish");
  }
  OpenFile& f = file_for(loc, file_id);
  if (!f.seen.insert(key_of(chunk, timestep)).second) {
    throw std::invalid_argument("ChunkStoreWriter: duplicate chunk entry");
  }
  ChunkIndexEntry e;
  e.chunk = chunk;
  e.timestep = timestep;
  e.offset = f.cursor;
  e.bytes = payload.size();
  e.checksum = payload_checksum(payload);
  f.out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
  f.cursor += payload.size();
  f.entries.push_back(e);
}

void ChunkStoreWriter::finish() {
  if (finished_) {
    throw std::logic_error("ChunkStoreWriter: finish called twice");
  }
  finished_ = true;
  for (auto& [file_id, f] : files_) {
    (void)file_id;
    FileHeader& h = f.header;
    h.magic = kMagic;
    h.version = kFormatVersion;
    h.num_entries = static_cast<std::uint32_t>(f.entries.size());
    h.index_offset = f.cursor;
    h.payload_bytes = f.cursor - sizeof(FileHeader);
    h.index_checksum = payload_checksum(
        std::as_bytes(std::span<const ChunkIndexEntry>(f.entries)));
    h.header_checksum = h.compute_checksum();
    f.out.write(reinterpret_cast<const char*>(f.entries.data()),
                static_cast<std::streamsize>(f.entries.size() *
                                             sizeof(ChunkIndexEntry)));
    f.out.seekp(0);
    f.out.write(reinterpret_cast<const char*>(&h), sizeof(h));
    f.out.flush();
    if (!f.out) {
      throw std::runtime_error("ChunkStoreWriter: write failed for " +
                               f.path.string());
    }
    f.out.close();
  }
}

// ---------------------------------------------------------------------------
// materialize
// ---------------------------------------------------------------------------

void materialize_dataset(const std::filesystem::path& root,
                         const data::DatasetStore& store,
                         const ChunkProducer& produce, int base_timestep,
                         int num_timesteps) {
  if (num_timesteps <= 0) {
    throw std::invalid_argument("materialize_dataset: no timesteps");
  }
  ChunkStoreWriter writer(root);
  std::vector<std::byte> payload;
  for (int t = base_timestep; t < base_timestep + num_timesteps; ++t) {
    for (int c = 0; c < store.layout().num_chunks(); ++c) {
      const int file_id = store.file_of_chunk(c);
      const data::FileLocation loc = store.location_of_file(file_id);
      payload.clear();
      produce(c, t, payload);
      writer.put_chunk(loc, file_id, c, t, payload);
    }
  }
  writer.finish();
}

void materialize_plume_dataset(const std::filesystem::path& root,
                               const data::DatasetStore& store,
                               const data::PlumeField& field, int base_timestep,
                               int num_timesteps) {
  std::vector<float> samples;
  materialize_dataset(
      root, store,
      [&](int chunk, int timestep, std::vector<std::byte>& out) {
        field.fill_chunk(store.layout(), chunk, static_cast<float>(timestep),
                         samples);
        const auto* begin = reinterpret_cast<const std::byte*>(samples.data());
        out.assign(begin, begin + samples.size() * sizeof(float));
      },
      base_timestep, num_timesteps);
}

// ---------------------------------------------------------------------------
// ChunkStore
// ---------------------------------------------------------------------------

ChunkStore::ChunkStore(const std::filesystem::path& root) : root_(root) {
  if (!std::filesystem::is_directory(root_)) {
    throw std::runtime_error("ChunkStore: no such directory: " + root_.string());
  }
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::recursive_directory_iterator(root_)) {
    if (entry.is_regular_file() && entry.path().extension() == kFileExtension) {
      paths.push_back(entry.path());
    }
  }
  if (paths.empty()) {
    throw std::runtime_error("ChunkStore: no chunk files under " +
                             root_.string());
  }
  // Directory iteration order is filesystem-dependent; sort for determinism.
  std::sort(paths.begin(), paths.end());
  for (const auto& p : paths) load_file(p);
}

ChunkStore::~ChunkStore() {
  for (int fd : fds_) {
    if (fd >= 0) ::close(fd);
  }
}

void ChunkStore::load_file(const std::filesystem::path& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throw std::runtime_error("ChunkStore: cannot open " + path.string());
  }
  fds_.push_back(fd);

  FileHeader h;
  if (::pread(fd, &h, sizeof(h), 0) != static_cast<ssize_t>(sizeof(h))) {
    throw std::runtime_error("ChunkStore: short header in " + path.string());
  }
  if (h.magic != kMagic) {
    throw std::runtime_error("ChunkStore: bad magic in " + path.string());
  }
  if (h.version != kFormatVersion) {
    // Explicit, structured rejection: a v1 file (FNV-1a checksums) must
    // name the version mismatch, not surface as a checksum mystery.
    throw std::runtime_error(
        "ChunkStore: incompatible format version " +
        std::to_string(h.version) + " (expected " +
        std::to_string(kFormatVersion) + ") in " + path.string());
  }
  if (h.header_checksum != h.compute_checksum()) {
    throw std::runtime_error("ChunkStore: header checksum mismatch in " +
                             path.string());
  }

  std::vector<ChunkIndexEntry> entries(h.num_entries);
  const std::size_t index_bytes = entries.size() * sizeof(ChunkIndexEntry);
  if (h.num_entries > 0 &&
      ::pread(fd, entries.data(), index_bytes,
              static_cast<off_t>(h.index_offset)) !=
          static_cast<ssize_t>(index_bytes)) {
    throw std::runtime_error("ChunkStore: short index in " + path.string());
  }
  if (h.index_checksum !=
      payload_checksum(std::as_bytes(std::span<const ChunkIndexEntry>(entries)))) {
    throw std::runtime_error("ChunkStore: index checksum mismatch in " +
                             path.string());
  }

  const DiskId disk{h.host, h.disk};
  int disk_index = -1;
  for (std::size_t i = 0; i < disks_.size(); ++i) {
    if (disks_[i] == disk) {
      disk_index = static_cast<int>(i);
      break;
    }
  }
  if (disk_index < 0) {
    disk_index = static_cast<int>(disks_.size());
    disks_.push_back(disk);
  }

  for (const ChunkIndexEntry& e : entries) {
    ChunkHandle handle;
    handle.fd = fd;
    handle.offset = e.offset;
    handle.bytes = e.bytes;
    handle.checksum = e.checksum;
    handle.disk_index = disk_index;
    handle.file_id = h.file_id;
    if (!index_.emplace(key_of(e.chunk, e.timestep), handle).second) {
      throw std::runtime_error("ChunkStore: duplicate chunk across files in " +
                               path.string());
    }
    total_payload_bytes_ += e.bytes;
  }
}

const ChunkStore::ChunkHandle& ChunkStore::handle(int chunk,
                                                  int timestep) const {
  const auto it = index_.find(key_of(chunk, timestep));
  if (it == index_.end()) {
    throw std::out_of_range("ChunkStore: chunk " + std::to_string(chunk) +
                            " timestep " + std::to_string(timestep) +
                            " not in store");
  }
  return it->second;
}

bool ChunkStore::contains(int chunk, int timestep) const {
  return index_.find(key_of(chunk, timestep)) != index_.end();
}

}  // namespace dc::io
