#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dc::obs {
class MetricsRegistry;
}

namespace dc::io {

/// Counters of one per-disk I/O scheduler thread. Durations are wall-clock
/// seconds, in the style of exec::InstanceMetrics: queue_wait is the time
/// requests sat enqueued before the disk thread picked them up, service is
/// the time spent inside pread (plus any simulated device latency).
struct DiskMetrics {
  int host = -1;
  int disk = 0;
  std::uint64_t requests = 0;
  std::uint64_t bytes = 0;
  double queue_wait_s = 0.0;
  double service_s = 0.0;
  std::size_t max_queue_depth = 0;

  [[nodiscard]] double avg_queue_wait_s() const {
    return requests ? queue_wait_s / static_cast<double>(requests) : 0.0;
  }
};

/// Block-cache counters. A readahead hit is a read() satisfied by a block
/// that a prefetch brought in (still in flight or already cached) — the
/// number of disk waits the readahead window actually hid.
struct CacheMetrics {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t insertions = 0;
  std::uint64_t readahead_hits = 0;
  std::uint64_t prefetch_issued = 0;
  std::uint64_t prefetch_dropped = 0;  ///< queue full / already cached
  std::uint64_t bytes_cached = 0;      ///< current resident payload bytes
  /// Currently resident blocks. Conservation invariant (asserted by
  /// tests/test_obs_invariants.cpp): insertions - evictions == resident_blocks
  /// at all times — clear() therefore counts every dropped block as an
  /// eviction rather than zeroing silently.
  std::uint64_t resident_blocks = 0;

  [[nodiscard]] double hit_rate() const {
    const std::uint64_t lookups = hits + misses;
    return lookups ? static_cast<double>(hits) / static_cast<double>(lookups)
                   : 0.0;
  }
};

/// Everything a ChunkReader measured: one DiskMetrics per scheduler thread
/// plus the shared cache, mirroring how exec::Metrics aggregates per-instance
/// counters.
struct IoMetrics {
  std::vector<DiskMetrics> disks;
  CacheMetrics cache;
  std::uint64_t read_calls = 0;
  double read_wait_s = 0.0;  ///< wall seconds read() spent blocked on I/O

  [[nodiscard]] std::uint64_t total_disk_bytes() const {
    std::uint64_t total = 0;
    for (const auto& d : disks) total += d.bytes;
    return total;
  }
  [[nodiscard]] double total_queue_wait_s() const {
    double total = 0.0;
    for (const auto& d : disks) total += d.queue_wait_s;
    return total;
  }
};

/// Publishes this IoMetrics snapshot into the unified registry under dotted
/// `<prefix>.` names: reader counters, the `<prefix>.cache.*` group, summed
/// disk totals, and one `<prefix>.disk.h<host>.d<disk>.*` group per
/// scheduler thread. The storage-side counterpart of core::publish /
/// exec::publish.
void publish(const IoMetrics& m, obs::MetricsRegistry& reg,
             const std::string& prefix = "io");

}  // namespace dc::io
