#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "core/crc32c.hpp"

namespace dc::io {

/// On-disk chunk-store format (".dcc" files).
///
/// One file per dataset file id, under a per-(host, disk) directory tree:
///
///   <root>/h<host>/d<disk>/f<file_id>.dcc
///
/// mirroring how data::DatasetStore maps dataset files onto the disks of the
/// cluster — a Read filter on host H only ever opens files below h<H>/.
///
/// File layout:
///
///   [FileHeader (64 B)] [chunk payloads, back to back] [ChunkIndexEntry...]
///
/// The header is written last (the writer seeks back), so a crash mid-write
/// leaves a file with a zeroed magic that open() rejects. Every payload and
/// the header itself carry checksums; the index entries are covered by the
/// header's index_checksum.
///
/// Format version 2: every checksum is CRC32C (core/crc32c.hpp — hardware
/// CRC32 instruction where available), stored zero-extended in the
/// unchanged 64-bit fields, so the layout is byte-compatible with v1 while
/// the digests are not. A v1 file is rejected explicitly by version number
/// ("incompatible format version"), never misdiagnosed as corruption.
inline constexpr std::uint32_t kMagic = 0x31534344;  // "DCS1" little-endian
inline constexpr std::uint32_t kFormatVersion = 2;
inline constexpr const char* kFileExtension = ".dcc";

/// CRC32C of a payload, widened to the format's 64-bit checksum fields.
[[nodiscard]] inline std::uint64_t payload_checksum(
    std::span<const std::byte> bytes) {
  return core::crc32c(bytes);
}

/// FNV-1a over a byte range — the v1 digest, kept so the migration tests
/// can fabricate v1-era files; the same digest primitive viz::Image uses.
[[nodiscard]] inline std::uint64_t fnv1a(std::span<const std::byte> bytes,
                                         std::uint64_t h = 0xcbf29ce484222325ULL) {
  for (std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Fixed-size file header. All fields little-endian (the toolchain targets
/// little-endian hosts; static_asserts keep the layout honest).
struct FileHeader {
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::int32_t file_id = -1;
  std::int32_t host = -1;
  std::int32_t disk = 0;
  std::uint32_t num_entries = 0;
  std::uint64_t index_offset = 0;    ///< byte offset of the index region
  std::uint64_t payload_bytes = 0;   ///< total chunk payload bytes
  std::uint64_t index_checksum = 0;  ///< CRC32C over the index entries
  std::uint64_t header_checksum = 0; ///< CRC32C over all preceding fields
  std::uint8_t reserved[8] = {};

  [[nodiscard]] std::uint64_t compute_checksum() const {
    return payload_checksum({reinterpret_cast<const std::byte*>(this),
                             offsetof(FileHeader, header_checksum)});
  }
};
static_assert(sizeof(FileHeader) == 64);

/// One chunk payload within a file, keyed by (chunk, timestep).
struct ChunkIndexEntry {
  std::int32_t chunk = -1;
  std::int32_t timestep = 0;
  std::uint64_t offset = 0;  ///< absolute byte offset of the payload
  std::uint64_t bytes = 0;
  std::uint64_t checksum = 0;  ///< CRC32C over the payload
};
static_assert(sizeof(ChunkIndexEntry) == 32);

/// Relative path of one store file below the root.
[[nodiscard]] inline std::string file_relpath(int host, int disk, int file_id) {
  return "h" + std::to_string(host) + "/d" + std::to_string(disk) + "/f" +
         std::to_string(file_id) + kFileExtension;
}

}  // namespace dc::io
