#include "io/reader.hpp"

namespace dc::io {

namespace {

[[nodiscard]] std::uint64_t key_of(int chunk, int timestep) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(chunk)) << 32) |
         static_cast<std::uint32_t>(timestep);
}

}  // namespace

ChunkReader::ChunkReader(const ChunkStore& store, ReaderOptions opts)
    : store_(store), opts_(opts) {
  if (opts_.trace != nullptr) {
    otrack_ = &opts_.trace->track("io:reader");
  }
  cache_ = std::make_unique<BlockCache>(opts_.cache_bytes);
  SchedulerOptions sched;
  sched.queue_capacity = opts_.queue_capacity;
  sched.simulated_latency = opts_.simulated_latency;
  sched.trace = opts_.trace;
  schedulers_.reserve(store_.disks().size());
  for (const DiskId& d : store_.disks()) {
    schedulers_.push_back(std::make_unique<DiskScheduler>(d, sched));
  }
}

ChunkReader::~ChunkReader() {
  // Join the scheduler threads before any other member dies: a straggling
  // on_complete callback touches mu_, in_flight_, and cache_.
  schedulers_.clear();
}

IoRequest ChunkReader::make_request(const ChunkStore::ChunkHandle& h,
                                    std::uint64_t key,
                                    std::shared_ptr<IoSlot> slot) {
  IoRequest req;
  req.fd = h.fd;
  req.offset = h.offset;
  req.bytes = h.bytes;
  req.checksum = h.checksum;
  req.verify = opts_.verify_checksums;
  req.slot = slot;
  req.on_complete =
      [this, key, slot](std::shared_ptr<const std::vector<std::byte>> data) {
        std::lock_guard<std::mutex> lk(mu_);
        const auto it = in_flight_.find(key);
        // Publish only while retiring our own flight. If the entry is gone
        // (a demand waiter already published and retired it) or belongs to
        // a newer flight for the same key, inserting here would resurrect
        // the block into a cache the owner may since have evicted from or
        // dropped entirely.
        if (it == in_flight_.end() || it->second.slot != slot) return;
        if (data) {
          cache_->put(key, std::move(data), it->second.prefetch);
        }
        in_flight_.erase(it);
      };
  return req;
}

std::shared_ptr<const std::vector<std::byte>> ChunkReader::read(
    int chunk, int timestep, double* io_wait_s) {
  if (io_wait_s != nullptr) *io_wait_s = 0.0;
  const std::uint64_t key = key_of(chunk, timestep);
  const ChunkStore::ChunkHandle& h = store_.handle(chunk, timestep);

  std::shared_ptr<IoSlot> slot;
  bool joined_prefetch = false;
  bool creator = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++read_calls_;
    if (auto data = cache_->get(key)) {
      emit_instant("cache.hit", chunk, timestep);
      return data;
    }
    emit_instant("cache.miss", chunk, timestep);
    const auto it = in_flight_.find(key);
    if (it != in_flight_.end()) {
      // Coalesce: join the in-flight prefetch / concurrent demand read. The
      // join is counted via inflight_joins_, so demote the flight to a
      // demand read — the block must not ALSO enter the cache flagged as
      // prefetched (that would count the same readahead success twice).
      slot = it->second.slot;
      joined_prefetch = it->second.prefetch;
      it->second.prefetch = false;
      emit_instant("read.join", chunk, timestep);
    } else {
      slot = std::make_shared<IoSlot>();
      in_flight_.emplace(key, Flight{slot, /*prefetch=*/false});
      creator = true;
    }
  }
  if (creator) {
    // Demand reads block when the disk queue is full (backpressure).
    schedulers_[static_cast<std::size_t>(h.disk_index)]->submit(
        make_request(h, key, slot), /*drop_if_full=*/false);
  }

  double waited = 0.0;
  auto data = slot->wait(waited);

  {
    std::lock_guard<std::mutex> lk(mu_);
    read_wait_s_ += waited;
    if (joined_prefetch) ++inflight_joins_;
    // Publish + retire eagerly instead of waiting for on_complete to run on
    // the scheduler thread: a caller that sequences read(a); read(b) must
    // see read(a)'s effect on the cache (and its eviction) before read(b).
    // on_complete then finds the block resident / the flight gone and
    // no-ops. from_prefetch=false: a joined prefetch is already counted via
    // inflight_joins_.
    cache_->put(key, data, /*from_prefetch=*/false);
    const auto it = in_flight_.find(key);
    if (it != in_flight_.end() && it->second.slot == slot) {
      in_flight_.erase(it);
    }
  }
  if (io_wait_s != nullptr) *io_wait_s = waited;
  return data;
}

void ChunkReader::prefetch(int chunk, int timestep) {
  // Hints are best-effort and must never throw mid-pipeline: a hint past the
  // end of the dataset is simply ignored.
  if (!store_.contains(chunk, timestep)) return;
  const std::uint64_t key = key_of(chunk, timestep);
  const ChunkStore::ChunkHandle& h = store_.handle(chunk, timestep);

  std::shared_ptr<IoSlot> slot;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (cache_->contains(key) || in_flight_.find(key) != in_flight_.end()) {
      ++prefetch_dropped_;
      emit_instant("prefetch.drop", chunk, timestep);
      return;
    }
    slot = std::make_shared<IoSlot>();
    in_flight_.emplace(key, Flight{slot, /*prefetch=*/true});
  }
  IoRequest req = make_request(h, key, slot);
  if (schedulers_[static_cast<std::size_t>(h.disk_index)]->submit(
          std::move(req), /*drop_if_full=*/true)) {
    std::lock_guard<std::mutex> lk(mu_);
    ++prefetch_issued_;
    emit_instant("prefetch.issue", chunk, timestep);
    return;
  }
  // The queue was full and the hint was dropped. Between releasing mu_ and
  // the failed submit, a concurrent read() may have joined this flight (it
  // demotes Flight::prefetch to false and blocks on the slot). Erasing the
  // flight then would strand that reader in IoSlot::wait forever, so only
  // erase when the flight is still untouched; otherwise resubmit blocking —
  // it is a demand read now, and demand reads take backpressure, not drops.
  bool joined = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++prefetch_dropped_;
    emit_instant("prefetch.drop", chunk, timestep);
    const auto it = in_flight_.find(key);
    if (it != in_flight_.end() && it->second.slot == slot) {
      if (it->second.prefetch) {
        in_flight_.erase(it);
      } else {
        joined = true;
      }
    }
  }
  if (joined) {
    schedulers_[static_cast<std::size_t>(h.disk_index)]->submit(
        make_request(h, key, slot), /*drop_if_full=*/false);
  }
}

void ChunkReader::drop_cache() { cache_->clear(); }

IoMetrics ChunkReader::metrics() const {
  IoMetrics m;
  for (const auto& s : schedulers_) m.disks.push_back(s->metrics());
  m.cache = cache_->metrics();
  std::lock_guard<std::mutex> lk(mu_);
  m.cache.readahead_hits += inflight_joins_;
  m.cache.prefetch_issued = prefetch_issued_;
  m.cache.prefetch_dropped = prefetch_dropped_;
  m.read_calls = read_calls_;
  m.read_wait_s = read_wait_s_;
  return m;
}

}  // namespace dc::io
