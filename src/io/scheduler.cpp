#include "io/scheduler.hpp"

#include <unistd.h>

#include <algorithm>
#include <stdexcept>

#include "core/arena.hpp"
#include "io/format.hpp"

namespace dc::io {

namespace {

[[nodiscard]] double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

std::shared_ptr<const std::vector<std::byte>> IoSlot::wait(double& waited_s) {
  std::unique_lock<std::mutex> lk(mu);
  waited_s = 0.0;
  if (!done) {
    const auto t0 = std::chrono::steady_clock::now();
    cv.wait(lk, [this] { return done; });
    waited_s = seconds_since(t0);
  }
  if (!error.empty()) {
    throw std::runtime_error(error);
  }
  return data;
}

DiskScheduler::DiskScheduler(DiskId id, SchedulerOptions opts)
    : id_(id), opts_(opts) {
  if (opts_.queue_capacity == 0) {
    throw std::invalid_argument("DiskScheduler: queue capacity must be > 0");
  }
  metrics_.host = id_.host;
  metrics_.disk = id_.disk;
  if (opts_.trace != nullptr) {
    otrack_ = &opts_.trace->track("io:disk h" + std::to_string(id_.host) +
                                  "/d" + std::to_string(id_.disk));
  }
  thread_ = std::thread([this] { thread_main(); });
}

DiskScheduler::~DiskScheduler() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_.notify_all();
  space_.notify_all();
  thread_.join();
  // thread_main exits on stop_ without draining, so teardown is fast even
  // with a deep queue of simulated-latency requests. Fail whatever is still
  // queued so waiters do not hang (their on_complete is never invoked).
  for (auto& [req, enqueued] : queue_) {
    (void)enqueued;
    std::lock_guard<std::mutex> lk(req.slot->mu);
    req.slot->error = "DiskScheduler: stopped before request was served";
    req.slot->done = true;
    req.slot->cv.notify_all();
  }
  queue_.clear();
}

bool DiskScheduler::submit(IoRequest req, bool drop_if_full) {
  std::unique_lock<std::mutex> lk(mu_);
  if (queue_.size() >= opts_.queue_capacity) {
    if (drop_if_full) return false;
    space_.wait(lk,
                [this] { return queue_.size() < opts_.queue_capacity || stop_; });
  }
  if (stop_) {
    throw std::logic_error("DiskScheduler: submit after stop");
  }
  queue_.emplace_back(std::move(req), std::chrono::steady_clock::now());
  metrics_.max_queue_depth = std::max(metrics_.max_queue_depth, queue_.size());
  work_.notify_one();
  return true;
}

DiskMetrics DiskScheduler::metrics() const {
  std::lock_guard<std::mutex> lk(mu_);
  return metrics_;
}

void DiskScheduler::thread_main() {
  for (;;) {
    IoRequest req;
    double queue_wait = 0.0;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_.wait(lk, [this] { return !queue_.empty() || stop_; });
      if (stop_) return;  // destructor fails anything left in the queue
      auto [r, enqueued] = std::move(queue_.front());
      queue_.pop_front();
      req = std::move(r);
      queue_wait = seconds_since(enqueued);
      space_.notify_one();
    }
    serve(req, queue_wait);
  }
}

void DiskScheduler::serve(IoRequest& req, double queue_wait) {
  const auto t0 = std::chrono::steady_clock::now();
  if (otrack_ != nullptr && opts_.trace->enabled()) {
    otrack_->begin(opts_.trace->seconds(t0), "io.read",
                   static_cast<std::int64_t>(req.bytes),
                   static_cast<std::int64_t>(queue_wait * 1e6));
  }
  // The read block is an arena slot: the same storage the cache shares and
  // a filter may push downstream — the disk→NIC path starts copy-free here.
  auto data = core::BufferArena::global().lease(req.bytes);
  data->resize(req.bytes);
  std::string error;

  std::size_t got = 0;
  while (got < req.bytes) {
    const ssize_t n =
        ::pread(req.fd, data->data() + got, req.bytes - got,
                static_cast<off_t>(req.offset + got));
    if (n < 0) {
      error = "DiskScheduler: pread failed on disk h" +
              std::to_string(id_.host) + "/d" + std::to_string(id_.disk);
      break;
    }
    if (n == 0) {
      error = "DiskScheduler: short read (truncated store file)";
      break;
    }
    got += static_cast<std::size_t>(n);
  }
  if (error.empty() && req.verify && payload_checksum(*data) != req.checksum) {
    error = "DiskScheduler: payload checksum mismatch (corrupt chunk)";
  }
  if (opts_.simulated_latency.count() > 0) {
    std::this_thread::sleep_for(opts_.simulated_latency);
  }

  std::shared_ptr<const std::vector<std::byte>> completed =
      error.empty() ? std::shared_ptr<const std::vector<std::byte>>(
                          std::move(data))
                    : nullptr;
  // Account the request BEFORE releasing the waiter: anyone who observed a
  // completed read must also observe it in the metrics.
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++metrics_.requests;
    metrics_.bytes += req.bytes;
    metrics_.queue_wait_s += queue_wait;
    metrics_.service_s += seconds_since(t0);
  }
  if (otrack_ != nullptr && opts_.trace->enabled()) {
    otrack_->end(opts_.trace->now(), "io.read");
  }
  {
    std::lock_guard<std::mutex> lk(req.slot->mu);
    if (completed) {
      req.slot->data = completed;
    } else {
      req.slot->error = std::move(error);
    }
    req.slot->done = true;
    req.slot->cv.notify_all();
  }
  if (req.on_complete) {
    req.on_complete(std::move(completed));
  }
}

}  // namespace dc::io
