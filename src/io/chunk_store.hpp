#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/store.hpp"
#include "data/synth.hpp"
#include "io/format.hpp"

namespace dc::io {

/// Identity of one physical disk directory (h<host>/d<disk>) in a store.
struct DiskId {
  int host = -1;
  int disk = 0;
  bool operator==(const DiskId&) const = default;
};

/// Streams chunk payloads into a per-(host, disk) directory tree in the
/// on-disk format of io/format.hpp. Usage:
///
///   ChunkStoreWriter w(root);
///   w.put_chunk(loc, file_id, chunk, timestep, bytes);  // any order
///   w.finish();                                         // throws on failure
///
/// Chunks belonging to one dataset file must all carry that file's location;
/// a (chunk, timestep) pair may be written at most once per file.
class ChunkStoreWriter {
 public:
  explicit ChunkStoreWriter(std::filesystem::path root);
  ~ChunkStoreWriter();

  ChunkStoreWriter(const ChunkStoreWriter&) = delete;
  ChunkStoreWriter& operator=(const ChunkStoreWriter&) = delete;

  void put_chunk(data::FileLocation loc, int file_id, int chunk, int timestep,
                 std::span<const std::byte> payload);

  /// Writes every index + header and closes all files. Must be called
  /// exactly once; throws std::runtime_error if any stream failed.
  void finish();

  [[nodiscard]] const std::filesystem::path& root() const { return root_; }

 private:
  struct OpenFile;
  OpenFile& file_for(data::FileLocation loc, int file_id);

  std::filesystem::path root_;
  std::map<int, OpenFile> files_;  ///< by file_id
  bool finished_ = false;
};

/// Produces the payload of (chunk, timestep) during materialization.
using ChunkProducer =
    std::function<void(int chunk, int timestep, std::vector<std::byte>& out)>;

/// Materializes a data::DatasetStore's placement into an on-disk tree under
/// `root`: every chunk of every timestep in [base_timestep,
/// base_timestep + num_timesteps) is produced and written to the file /
/// (host, disk) directory its DatasetStore location names.
void materialize_dataset(const std::filesystem::path& root,
                         const data::DatasetStore& store,
                         const ChunkProducer& produce, int base_timestep,
                         int num_timesteps);

/// Convenience producer: PlumeField samples, bit-identical to
/// data::PlumeField::fill_chunk (so an out-of-core render reproduces the
/// in-memory images exactly).
void materialize_plume_dataset(const std::filesystem::path& root,
                               const data::DatasetStore& store,
                               const data::PlumeField& field, int base_timestep,
                               int num_timesteps);

/// An opened on-disk chunk store: scans the directory tree, validates every
/// header and index, and resolves (chunk, timestep) to a pread-able byte
/// range. File descriptors stay open for the store's lifetime and are shared
/// by the per-disk scheduler threads (pread is position-less and
/// thread-safe on a shared descriptor).
class ChunkStore {
 public:
  explicit ChunkStore(const std::filesystem::path& root);
  ~ChunkStore();

  ChunkStore(const ChunkStore&) = delete;
  ChunkStore& operator=(const ChunkStore&) = delete;

  /// Where one chunk payload lives.
  struct ChunkHandle {
    int fd = -1;
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
    std::uint64_t checksum = 0;
    int disk_index = 0;  ///< dense index into disks()
    int file_id = -1;
  };

  /// Throws std::out_of_range if the pair is not in the store.
  [[nodiscard]] const ChunkHandle& handle(int chunk, int timestep) const;
  [[nodiscard]] bool contains(int chunk, int timestep) const;

  [[nodiscard]] const std::vector<DiskId>& disks() const { return disks_; }
  [[nodiscard]] int num_files() const { return static_cast<int>(fds_.size()); }
  [[nodiscard]] std::size_t num_chunks() const { return index_.size(); }
  [[nodiscard]] std::uint64_t total_payload_bytes() const {
    return total_payload_bytes_;
  }
  [[nodiscard]] const std::filesystem::path& root() const { return root_; }

 private:
  void load_file(const std::filesystem::path& path);

  std::filesystem::path root_;
  std::vector<int> fds_;
  std::vector<DiskId> disks_;
  std::unordered_map<std::uint64_t, ChunkHandle> index_;  ///< key(chunk, ts)
  std::uint64_t total_payload_bytes_ = 0;
};

}  // namespace dc::io
