#include "io/spill.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "core/crc32c.hpp"

namespace dc::io {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string("spill: ") + what + ": " +
                           std::strerror(errno));
}

void pwrite_all(int fd, const std::byte* p, std::size_t n, std::uint64_t off) {
  while (n > 0) {
    const ssize_t w = ::pwrite(fd, p, n, static_cast<off_t>(off));
    if (w < 0) {
      if (errno == EINTR) continue;
      throw_errno("pwrite");
    }
    p += w;
    n -= static_cast<std::size_t>(w);
    off += static_cast<std::uint64_t>(w);
  }
}

void pread_all(int fd, std::byte* p, std::size_t n, std::uint64_t off) {
  while (n > 0) {
    const ssize_t r = ::pread(fd, p, n, static_cast<off_t>(off));
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_errno("pread");
    }
    if (r == 0) throw std::runtime_error("spill: short read (truncated file)");
    p += r;
    n -= static_cast<std::size_t>(r);
    off += static_cast<std::uint64_t>(r);
  }
}

}  // namespace

std::filesystem::path temp_root() {
  const char* t = std::getenv("TMPDIR");
  if (t != nullptr && *t != '\0') return std::filesystem::path(t);
  return std::filesystem::path("/tmp");
}

SpillFile::SpillFile(std::filesystem::path dir) : dir_(std::move(dir)) {
  if (dir_.empty()) dir_ = temp_root();
}

SpillFile::~SpillFile() {
  if (fd_ >= 0) ::close(fd_);  // the file was unlinked at creation
}

void SpillFile::ensure_open_locked() {
  if (fd_ >= 0) return;
  std::string tmpl = (dir_ / "dc_spill_XXXXXX").string();
  const int fd = ::mkstemp(tmpl.data());
  if (fd < 0) throw_errno("mkstemp");
  // Unlink now: the kernel keeps the inode alive through our descriptor and
  // reclaims it on close — even a SIGKILL cannot strand the scratch file.
  ::unlink(tmpl.c_str());
  fd_ = fd;
}

std::uint64_t SpillFile::append(std::span<const std::byte> payload) {
  std::lock_guard<std::mutex> lk(mu_);
  ensure_open_locked();

  Record rec;
  rec.offset = write_off_;
  rec.bytes = payload.size();
  rec.crc = core::crc32c(payload);
  if (!payload.empty()) pwrite_all(fd_, payload.data(), payload.size(), write_off_);
  write_off_ += payload.size();

  const std::uint64_t token = next_token_++;
  live_.emplace(token, rec);
  ++stats_.records_written;
  stats_.bytes_written += payload.size();
  ++stats_.live_records;
  stats_.file_high_water_bytes =
      std::max(stats_.file_high_water_bytes, write_off_);
  return token;
}

void SpillFile::read(std::uint64_t token, std::vector<std::byte>& out) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = live_.find(token);
  if (it == live_.end()) throw std::runtime_error("spill: unknown token");
  const Record rec = it->second;

  out.resize(rec.bytes);
  if (rec.bytes > 0) pread_all(fd_, out.data(), rec.bytes, rec.offset);
  const std::uint32_t crc = core::crc32c(std::span<const std::byte>(out));
  if (crc != rec.crc)
    throw std::runtime_error("spill: CRC32C mismatch on re-admission");

  live_.erase(it);
  ++stats_.records_read;
  stats_.bytes_read += rec.bytes;
  --stats_.live_records;
  maybe_rewind_locked();
}

void SpillFile::pread_at(std::uint64_t token, std::size_t offset,
                         std::span<std::byte> out) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = live_.find(token);
  if (it == live_.end()) throw std::runtime_error("spill: unknown token");
  const Record& rec = it->second;
  if (offset + out.size() > rec.bytes)
    throw std::runtime_error("spill: pread_at past record end");
  if (!out.empty()) pread_all(fd_, out.data(), out.size(), rec.offset + offset);
}

std::size_t SpillFile::record_bytes(std::uint64_t token) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = live_.find(token);
  if (it == live_.end()) throw std::runtime_error("spill: unknown token");
  return it->second.bytes;
}

std::uint32_t SpillFile::record_crc(std::uint64_t token) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = live_.find(token);
  if (it == live_.end()) throw std::runtime_error("spill: unknown token");
  return it->second.crc;
}

void SpillFile::discard(std::uint64_t token) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = live_.find(token);
  if (it == live_.end()) return;
  --stats_.live_records;
  live_.erase(it);
  maybe_rewind_locked();
}

void SpillFile::maybe_rewind_locked() {
  if (!live_.empty() || fd_ < 0 || write_off_ == 0) return;
  // Episodic pressure: everything spilled has been drained, so recycle the
  // scratch space instead of letting the file ratchet upward forever.
  if (::ftruncate(fd_, 0) == 0) write_off_ = 0;
}

SpillStats SpillFile::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace dc::io
