#include "core/crc32c.hpp"

#include <array>
#include <cstring>

namespace dc::core {

namespace {

/// Reflected CRC32C polynomial.
constexpr std::uint32_t kPoly = 0x82F63B78u;

/// Slicing-by-8 lookup tables, generated once at first use. Table 0 is the
/// classic byte-at-a-time table; table k folds a byte that sits k positions
/// deeper in the 8-byte word, so the inner loop retires 8 bytes per step
/// with eight independent loads.
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 8> t;
  Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1u) ? (c >> 1) ^ kPoly : c >> 1;
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = t[0][i];
      for (std::size_t k = 1; k < 8; ++k) {
        c = t[0][c & 0xFFu] ^ (c >> 8);
        t[k][i] = c;
      }
    }
  }
};

const Tables& tables() {
  static const Tables tb;
  return tb;
}

#if defined(__x86_64__) || defined(__i386__)
#define DC_CRC32C_HW 1

/// The target attribute scopes SSE4.2 codegen to this one function, so the
/// translation unit itself builds with -mno-sse4.2 (the CI object-library
/// check) and the choice stays a pure runtime dispatch.
__attribute__((target("sse4.2"))) std::uint32_t hw_impl(
    const std::byte* p, std::size_t n, std::uint32_t crc) {
#if defined(__x86_64__)
  while (n >= 8) {
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    crc = static_cast<std::uint32_t>(
        __builtin_ia32_crc32di(crc, w));
    p += 8;
    n -= 8;
  }
#endif
  while (n >= 4) {
    std::uint32_t w;
    std::memcpy(&w, p, 4);
    crc = __builtin_ia32_crc32si(crc, w);
    p += 4;
    n -= 4;
  }
  while (n > 0) {
    crc = __builtin_ia32_crc32qi(crc, static_cast<unsigned char>(*p));
    ++p;
    --n;
  }
  return crc;
}
#endif  // x86

using BackendFn = std::uint32_t (*)(std::span<const std::byte>, std::uint32_t);

BackendFn pick_backend() {
#if defined(DC_CRC32C_HW)
  if (__builtin_cpu_supports("sse4.2")) return &crc32c_hw;
#endif
  return &crc32c_sw;
}

BackendFn backend() {
  static const BackendFn fn = pick_backend();
  return fn;
}

}  // namespace

std::uint32_t crc32c_sw(std::span<const std::byte> bytes, std::uint32_t seed) {
  const Tables& tb = tables();
  std::uint32_t crc = ~seed;
  const std::byte* p = bytes.data();
  std::size_t n = bytes.size();
  while (n >= 8) {
    std::uint32_t lo, hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = tb.t[7][lo & 0xFFu] ^ tb.t[6][(lo >> 8) & 0xFFu] ^
          tb.t[5][(lo >> 16) & 0xFFu] ^ tb.t[4][lo >> 24] ^
          tb.t[3][hi & 0xFFu] ^ tb.t[2][(hi >> 8) & 0xFFu] ^
          tb.t[1][(hi >> 16) & 0xFFu] ^ tb.t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = tb.t[0][(crc ^ static_cast<std::uint32_t>(*p)) & 0xFFu] ^ (crc >> 8);
    ++p;
    --n;
  }
  return ~crc;
}

std::uint32_t crc32c_hw(std::span<const std::byte> bytes, std::uint32_t seed) {
#if defined(DC_CRC32C_HW)
  return ~hw_impl(bytes.data(), bytes.size(), ~seed);
#else
  return crc32c_sw(bytes, seed);
#endif
}

bool crc32c_hw_available() {
#if defined(DC_CRC32C_HW)
  return __builtin_cpu_supports("sse4.2") != 0;
#else
  return false;
#endif
}

std::uint32_t crc32c(std::span<const std::byte> bytes, std::uint32_t seed) {
  return backend()(bytes, seed);
}

const char* crc32c_backend() {
  return backend() == &crc32c_sw ? "software" : "sse4.2";
}

}  // namespace dc::core
