#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace dc::obs {
class MetricsRegistry;
}

namespace dc::core {

/// Per-filter-instance counters.
struct InstanceMetrics {
  int filter = -1;
  int instance = -1;
  int host = -1;
  std::string host_class;
  double work_ops = 0.0;              ///< charged compute demand
  sim::SimTime busy_time = 0.0;       ///< virtual time spent in CPU jobs
  sim::SimTime stall_time = 0.0;      ///< virtual time blocked on output windows
  std::uint64_t buffers_in = 0;
  std::uint64_t buffers_out = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t disk_bytes = 0;
  std::uint64_t acks_sent = 0;
};

/// Per-logical-stream counters (Table 1 reports these).
struct StreamMetrics {
  std::string name;
  std::uint64_t buffers = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t message_bytes = 0;  ///< payload + headers
};

/// Fault-tolerance counters (cumulative, like the rest of Metrics).
struct FaultMetrics {
  std::uint64_t hosts_failed = 0;  ///< fail-stop crashes observed mid-UOW
  /// Copy sets declared dead and routed around (one per copy set).
  std::uint64_t failovers = 0;
  /// Buffers re-dispatched to a surviving copy set after a failover.
  std::uint64_t retransmits = 0;
  /// Buffer copies that never reached a live consumer: in flight to a dead
  /// copy set at failover, queued on the dead host, produced by a copy that
  /// died before dispatching, or dropped because every target copy set of
  /// the stream is dead. Retransmits recover all but the last category.
  std::uint64_t buffers_lost = 0;
  /// Acknowledgments for buffers the producer had already reclaimed (the
  /// ack raced the failover) — each one marks a potential duplicate delivery.
  std::uint64_t buffers_duplicated = 0;
  /// Virtual time from the instant a copy set's host crashed (or, for a
  /// fenced-but-alive host, from first suspicion) to its failover.
  sim::SimTime recovery_latency_total = 0.0;
  sim::SimTime recovery_latency_max = 0.0;

  void reset() { *this = FaultMetrics{}; }
};

/// Outcome classification of one unit of work.
enum class UowStatus {
  kComplete,     ///< no faults perturbed this UOW
  kDegraded,     ///< failovers happened, but every filter kept >= 1 copy:
                 ///< all payload was delivered at least once
  kPartialLoss,  ///< some filter lost every copy; the surviving pipeline ran
                 ///< to completion but its output is incomplete
};

[[nodiscard]] inline const char* to_string(UowStatus s) {
  switch (s) {
    case UowStatus::kComplete: return "complete";
    case UowStatus::kDegraded: return "degraded";
    case UowStatus::kPartialLoss: return "partial-loss";
  }
  return "?";
}

/// Structured result of Runtime::run_uow_outcome(): what happened, not just
/// how long it took. Fault counters are the deltas for this UOW only.
struct UowOutcome {
  UowStatus status = UowStatus::kComplete;
  sim::SimTime makespan = 0.0;
  std::vector<int> dead_filters;  ///< filters whose every copy died
  std::uint64_t failovers = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t buffers_lost = 0;
  std::uint64_t buffers_duplicated = 0;

  /// True when every filter still had at least one live copy at the end.
  [[nodiscard]] bool data_complete() const {
    return status != UowStatus::kPartialLoss;
  }
};

/// Aggregate of one filter over all its instances (Table 2 reports min /
/// avg / max processing time per filter).
struct FilterAggregate {
  std::string name;
  int instances = 0;
  sim::SimTime busy_min = 0.0;
  sim::SimTime busy_avg = 0.0;
  sim::SimTime busy_max = 0.0;
  double work_ops = 0.0;
};

/// Everything measured during one or more UOWs.
struct Metrics {
  std::vector<InstanceMetrics> instances;
  std::vector<StreamMetrics> streams;
  sim::SimTime makespan = 0.0;  ///< last UOW duration
  std::uint64_t acks_total = 0;
  std::uint64_t ack_bytes_total = 0;
  FaultMetrics faults;

  /// Aggregates instance metrics by filter id.
  [[nodiscard]] FilterAggregate aggregate_filter(int filter,
                                                 const std::string& name) const {
    FilterAggregate agg;
    agg.name = name;
    bool first = true;
    double sum = 0.0;
    for (const auto& m : instances) {
      if (m.filter != filter) continue;
      ++agg.instances;
      sum += m.busy_time;
      agg.work_ops += m.work_ops;
      if (first || m.busy_time < agg.busy_min) agg.busy_min = m.busy_time;
      if (first || m.busy_time > agg.busy_max) agg.busy_max = m.busy_time;
      first = false;
    }
    if (agg.instances > 0) agg.busy_avg = sum / agg.instances;
    return agg;
  }

  /// Buffers received by copies of `filter`, grouped by host class
  /// (Table 3 reports the per-node average of these).
  [[nodiscard]] std::map<std::string, std::uint64_t> buffers_in_by_class(
      int filter) const {
    std::map<std::string, std::uint64_t> by_class;
    for (const auto& m : instances) {
      if (m.filter != filter) continue;
      by_class[m.host_class] += m.buffers_in;
    }
    return by_class;
  }
};

/// Publishes this Metrics snapshot into the unified registry under dotted
/// `<prefix>.` names: makespan / ack totals, instance-count and summed
/// per-instance counters (buffers, bytes, busy/stall time, ...), one
/// `<prefix>.stream.<name>.*` group per logical stream, and the fault
/// counters. set()-semantics — publishing twice overwrites, so benches call
/// it once at finalize. This is the single export surface shared with
/// exec::publish and io::publish: every bench emits one registry JSON
/// instead of three metric dialects.
void publish(const Metrics& m, obs::MetricsRegistry& reg,
             const std::string& prefix = "sim");

}  // namespace dc::core
