#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/buffer.hpp"

namespace dc::core {

/// Freelist retention caps of one BufferArena: beyond these a returned slot
/// is freed instead of refiled. The defaults are the historical hardcoded
/// values, so an arena constructed without options behaves exactly as before;
/// a MemoryGovernor tightens them on governed hosts (retained bytes bounded
/// by the memory budget) and restores them on destruction.
struct ArenaOptions {
  std::size_t max_slots_per_class = 64;
  std::size_t max_retained_bytes = 128u * 1024u * 1024u;
};

/// Point-in-time counters of one BufferArena. Leases and returns are
/// counted at the storage-slot level (one slot == one backing
/// std::vector<std::byte>, however many Buffer handles share it), so
/// conservation is a single equation: after every Buffer referencing the
/// arena is gone, slots_leased == slots_returned. A double release is
/// structurally impossible — the return runs in the shared_ptr deleter,
/// which the runtime invokes exactly once — and the property tests assert
/// the equation across clean runs, aborts, and FaultHarness kills.
struct ArenaStats {
  std::uint64_t slots_leased = 0;    ///< storage slots handed out
  std::uint64_t slots_returned = 0;  ///< slots whose last reference dropped
  std::uint64_t pool_hits = 0;       ///< leases served from the freelist
  std::uint64_t pool_misses = 0;     ///< leases that had to allocate
  std::uint64_t bytes_leased = 0;    ///< sum of requested capacities
  /// Deliberate materializations of a DATA payload into fresh storage.
  /// Zero on the zero-copy path by construction; the copy-path fallback
  /// (DistributedOptions::copy_payloads) books every copy here, which is
  /// how the differential tests prove the hot path stayed copy-free.
  std::uint64_t payload_copies = 0;
  std::uint64_t payload_copy_bytes = 0;

  [[nodiscard]] std::uint64_t outstanding() const {
    return slots_leased - slots_returned;
  }
};

/// Pooled, refcounted buffer storage shared by the io, exec, and net layers
/// (ROADMAP open item 2: the zero-copy hot path). A chunk read by
/// io::DiskScheduler lands in an arena slot; the same slot travels through
/// exec::PortChannel as a core::Buffer and out the NIC as a net::Frame
/// payload — reference counts move, bytes do not.
///
/// Ownership rules (DESIGN.md §5.5):
///   - lease() hands out a shared_ptr whose deleter refiles the storage
///     into a per-size-class freelist. Dropping the last reference IS the
///     return; there is no explicit free and therefore no double-free.
///   - The deleter captures the internal pool by shared_ptr, so returns
///     remain safe even if they outlive the arena object itself.
///   - Size classes are power-of-two capacities; the freelist retains a
///     bounded number of slots per class (and bounded total bytes) and
///     simply frees the rest, so a burst never pins memory forever.
///   - After fork() the child owns a private copy-on-write pool; a child
///     dying mid-lease (SIGKILL fault injection) cannot poison the
///     parent's freelist or its conservation counters.
///
/// All methods are thread-safe.
class BufferArena {
 public:
  explicit BufferArena(ArenaOptions options = {});

  /// Leases one storage slot with at least `capacity_bytes` reserved. The
  /// vector is empty (size 0); receivers that need a sized span resize it.
  [[nodiscard]] std::shared_ptr<std::vector<std::byte>> lease(
      std::size_t capacity_bytes);

  /// Leases a slot and wraps it as an empty fixed-capacity stream Buffer —
  /// the engines' make_buffer primitive.
  [[nodiscard]] Buffer make(std::size_t capacity_bytes);

  /// Books one deliberate payload copy of `bytes` (see ArenaStats).
  void note_payload_copy(std::size_t bytes);

  /// The size-class capacity a lease of `capacity_bytes` is filed under:
  /// the next power of two, floored at the minimum retained class. Callers
  /// sizing payloads to exactly fill a pooled slot (benchmarks, wire
  /// batching) use this instead of hard-coding the class boundaries.
  [[nodiscard]] static std::size_t slot_capacity(std::size_t capacity_bytes);

  [[nodiscard]] ArenaStats stats() const;

  /// Replaces the retention caps at runtime (thread-safe). Already-retained
  /// slots above the new caps are freed immediately, so tightening takes
  /// effect without waiting for churn. Returns the previous options so a
  /// caller scoping a tighter policy (MemoryGovernor::govern) can restore
  /// them.
  ArenaOptions set_retention(ArenaOptions options);
  [[nodiscard]] ArenaOptions retention() const;

  /// The process-wide arena every engine, scheduler, and transport uses by
  /// default. Tests may construct private arenas for isolation.
  static BufferArena& global();

 private:
  struct Pool;
  std::shared_ptr<Pool> pool_;
};

}  // namespace dc::core
