#include "core/runtime.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <stdexcept>
#include <utility>

#include "core/writer_state.hpp"

namespace dc::core {

void validate(const RuntimeConfig& config) {
  if (config.window <= 0) {
    throw std::invalid_argument("RuntimeConfig: window must be positive");
  }
  if (config.default_buffer_bytes == 0) {
    throw std::invalid_argument(
        "RuntimeConfig: default_buffer_bytes must be nonzero");
  }
  if (config.detection == FailureDetection::kAckTimeout) {
    if (config.policy != Policy::kDemandDriven) {
      throw std::invalid_argument(
          "RuntimeConfig: ack-timeout detection needs the demand-driven "
          "policy (RR/WRR have no acks; use kMembership)");
    }
    if (config.ack_timeout <= 0.0 || config.ack_timeout_backoff < 1.0 ||
        config.ack_timeout_max < config.ack_timeout ||
        config.ack_timeout_strikes < 1) {
      throw std::invalid_argument("RuntimeConfig: bad ack-timeout parameters");
    }
  }
}

// ---------------------------------------------------------------------------
// Internal structures
// ---------------------------------------------------------------------------

/// A buffer in flight / queued at a consumer copy set, with enough envelope
/// to credit the producer's window and send DD acknowledgments.
struct Runtime::Delivery {
  Buffer buf;
  Instance* producer = nullptr;
  int out_port = 0;
  int target = 0;  ///< index of the receiving copy set among the stream targets
};

/// All transparent copies of one filter on one host share input queues; a
/// buffer arriving at the copy set is processed by whichever copy idles
/// first (demand-based balance within a host, paper Section 2).
struct Runtime::CopySet {
  int filter = -1;
  int host = -1;
  std::vector<Instance*> copies;
  std::vector<std::deque<Delivery>> queues;  ///< one per input port
  std::vector<int> eow_pending;              ///< producer copies yet to EOW, per port
  int rr_port = 0;                           ///< fair rotation across ports

  // Fault state. `down` is ground truth (the host crashed, set by the
  // membership callback); `declared_dead` is the routing decision (set at
  // failover — by the membership sweep, or by ack-timeout detection, which
  // may also fence an unreachable-but-alive copy set).
  bool down = false;
  bool declared_dead = false;
  sim::SimTime down_since = -1.0;
  sim::SimTime suspected_since = -1.0;

  [[nodiscard]] bool all_eow() const {
    for (int e : eow_pending) {
      if (e > 0) return false;
    }
    return true;
  }
  [[nodiscard]] bool queues_empty() const {
    for (const auto& q : queues) {
      if (!q.empty()) return false;
    }
    return true;
  }
};

/// Runtime view of one logical stream: the consumer copy sets it fans out to.
struct Runtime::StreamRt {
  const StreamSpec* spec = nullptr;
  int id = -1;
  std::vector<CopySet*> targets;
  std::vector<int> wrr_order;  ///< target indices, one entry per consumer copy
};

/// Writer-side state of one producer copy for one output port: the shared
/// flow-control / policy state machine plus the simulator-only stream
/// binding and fault-tolerance retention.
struct SimWriter : WriterState {
  Runtime::StreamRt* stream = nullptr;

  /// Per-target fault-tolerance state (sized only when detection != kNone).
  /// `outstanding` retains a copy of every dispatched buffer until the
  /// consumer takes responsibility for it — dequeue for RR/WRR, ack for DD.
  /// Retention is cheap: Buffer payloads are shared and immutable. The
  /// deque is FIFO because per-target deliveries (and thus their releases /
  /// acks) travel FIFO links.
  struct TargetFt {
    std::deque<Buffer> outstanding;
    sim::EventId timer = 0;        ///< armed ack-progress timer (DD)
    int strikes = 0;               ///< consecutive silent timeouts
    std::uint64_t acks_seen = 0;   ///< progress counter for timer snapshots
  };
  std::vector<TargetFt> ft;
};

struct PendingOut {
  int port;
  Buffer buf;
};

struct DiskDemand {
  int disk;
  std::uint64_t bytes;
};

/// One transparent copy of a filter for the current UOW.
struct Runtime::Instance {
  enum class State { kCreated, kInit, kIdle, kBusy, kDraining, kFinished };

  Runtime* rt = nullptr;
  int filter = -1;
  int index = -1;         ///< global index among the filter's copies
  int copy_in_host = -1;  ///< index within the copy set
  CopySet* cset = nullptr;
  std::unique_ptr<Filter> user;
  std::vector<SimWriter> writers;  ///< per output port

  State state = State::kCreated;
  bool dead = false;  ///< crashed with its host, or fenced after a failover
  bool eow_executed = false;
  bool source_exhausted = false;
  std::deque<PendingOut> pending;

  // Per-callback accumulators, reset before each user callback.
  double charged_ops = 0.0;
  std::vector<DiskDemand> disk_demands;
  bool in_init = false;

  InstanceMetrics m;
  sim::Rng rng;
  sim::SimTime busy_start = 0.0;
  sim::SimTime drain_start = 0.0;
  obs::Track* otrack = nullptr;  ///< lazily bound by Runtime::obs_track

  std::unique_ptr<ContextImpl> ctx;
};

/// FilterContext implementation bound to one Instance.
struct Runtime::ContextImpl final : FilterContext {
  Instance* inst = nullptr;

  [[nodiscard]] int instance_index() const override { return inst->index; }
  [[nodiscard]] int num_instances() const override {
    return inst->rt->total_copies(inst->filter);
  }
  [[nodiscard]] int copy_in_host() const override { return inst->copy_in_host; }
  [[nodiscard]] int copies_on_host() const override {
    return static_cast<int>(inst->cset->copies.size());
  }
  [[nodiscard]] int host() const override { return inst->cset->host; }
  [[nodiscard]] const std::string& host_class() const override {
    return inst->rt->topo_.host(inst->cset->host).host_class();
  }
  [[nodiscard]] int uow_index() const override { return inst->rt->uow_index_; }
  [[nodiscard]] sim::SimTime now() const override {
    return inst->rt->topo_.sim().now();
  }
  [[nodiscard]] sim::Rng& rng() override { return inst->rng; }

  void charge(double ops) override {
    if (ops < 0.0) throw std::invalid_argument("charge: negative ops");
    inst->charged_ops += ops;
  }

  void read_disk(int local_disk, std::uint64_t bytes) override {
    const auto& spec = inst->rt->graph_.filter(inst->filter);
    if (!spec.is_source) {
      throw std::logic_error("read_disk is only available to source filters");
    }
    auto& host = inst->rt->topo_.host(inst->cset->host);
    if (local_disk < 0 || local_disk >= host.num_disks()) {
      throw std::out_of_range("read_disk: no such local disk");
    }
    inst->disk_demands.push_back(DiskDemand{local_disk, bytes});
    inst->m.disk_bytes += bytes;
  }

  void write(int port, Buffer buf) override {
    if (inst->in_init) {
      throw std::logic_error("write() is not allowed in init()");
    }
    if (port < 0 || port >= num_output_ports()) {
      throw std::out_of_range("write: bad output port");
    }
    inst->pending.push_back(PendingOut{port, std::move(buf)});
  }

  [[nodiscard]] Buffer make_buffer(int port) const override {
    return Buffer(buffer_bytes(port));
  }

  [[nodiscard]] int num_input_ports() const override {
    return inst->rt->graph_.filter(inst->filter).num_input_ports;
  }
  [[nodiscard]] int num_output_ports() const override {
    return inst->rt->graph_.filter(inst->filter).num_output_ports;
  }
  [[nodiscard]] std::size_t buffer_bytes(int out_port) const override {
    if (out_port < 0 || out_port >= num_output_ports()) {
      throw std::out_of_range("buffer_bytes: bad output port");
    }
    const int stream =
        inst->writers[static_cast<std::size_t>(out_port)].stream->id;
    return inst->rt->buffer_bytes_[static_cast<std::size_t>(stream)];
  }
};

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

Runtime::Runtime(sim::Topology& topo, const Graph& graph,
                 const Placement& placement, RuntimeConfig config)
    : topo_(topo),
      graph_(graph),
      placement_(placement),
      config_(std::move(config)),
      base_rng_(config_.rng_seed) {
  graph_.validate();
  validate(config_);
  if (fault_tolerant()) {
    failure_listener_ =
        topo_.add_host_failure_listener([this](int h) { on_host_failed(h); });
    partition_listener_ = topo_.add_partition_listener(
        [this](int h, bool p) { on_host_partitioned(h, p); });
  }
  // Negotiate buffer sizes: prefer the default, clamped to [min, max].
  buffer_bytes_.resize(static_cast<std::size_t>(graph_.num_streams()));
  for (int s = 0; s < graph_.num_streams(); ++s) {
    const auto& spec = graph_.stream(s);
    buffer_bytes_[static_cast<std::size_t>(s)] = std::clamp(
        config_.default_buffer_bytes, spec.min_buffer_bytes, spec.max_buffer_bytes);
  }
  // Placement sanity.
  for (int f = 0; f < graph_.num_filters(); ++f) {
    const auto& entries = placement_.entries(f);
    if (entries.empty()) {
      throw std::invalid_argument("Runtime: filter '" + graph_.filter(f).name +
                                  "' has no placement");
    }
    for (const auto& e : entries) {
      if (e.host >= topo_.size()) {
        throw std::invalid_argument("Runtime: placement host out of range");
      }
    }
    if (!graph_.filter(f).is_source && graph_.in_streams(f).empty()) {
      throw std::invalid_argument("Runtime: non-source filter '" +
                                  graph_.filter(f).name + "' has no inputs");
    }
  }
  // Stream metrics slots.
  metrics_.streams.resize(static_cast<std::size_t>(graph_.num_streams()));
  for (int s = 0; s < graph_.num_streams(); ++s) {
    metrics_.streams[static_cast<std::size_t>(s)].name = graph_.stream(s).name;
  }
}

Runtime::~Runtime() {
  if (failure_listener_ != 0) topo_.remove_listener(failure_listener_);
  if (partition_listener_ != 0) topo_.remove_listener(partition_listener_);
}

int Runtime::total_copies(int filter) const {
  return placement_.total_copies(filter);
}

void Runtime::emit_trace(const char* tag, const Instance& inst,
                         const std::string& detail) {
  if (!trace_.enabled()) return;
  trace_.emit(topo_.sim().now(), tag,
              graph_.filter(inst.filter).name + "#" +
                  std::to_string(inst.index) + "@h" +
                  std::to_string(inst.cset->host) +
                  (detail.empty() ? "" : " " + detail));
}

obs::Track* Runtime::obs_track(Instance& inst) {
  if (obs_ == nullptr) return nullptr;
  if (inst.otrack == nullptr) {
    inst.otrack = &obs_->track("sim:" + graph_.filter(inst.filter).name + "#" +
                               std::to_string(inst.index) + "@h" +
                               std::to_string(inst.cset->host));
  }
  return inst.otrack;
}

void Runtime::reset_metrics() {
  metrics_.instances.clear();
  metrics_.acks_total = 0;
  metrics_.ack_bytes_total = 0;
  metrics_.makespan = 0.0;
  metrics_.faults.reset();
  for (auto& s : metrics_.streams) {
    s.buffers = 0;
    s.payload_bytes = 0;
    s.message_bytes = 0;
  }
}

// ---------------------------------------------------------------------------
// UOW setup / teardown
// ---------------------------------------------------------------------------

void Runtime::build_uow() {
  // Copy sets: one per (filter, host) with at least one copy.
  std::vector<std::vector<CopySet*>> csets_by_filter(
      static_cast<std::size_t>(graph_.num_filters()));
  for (int f = 0; f < graph_.num_filters(); ++f) {
    const int in_ports = graph_.filter(f).num_input_ports;
    for (const auto& e : placement_.entries(f)) {
      auto cset = std::make_unique<CopySet>();
      cset->filter = f;
      cset->host = e.host;
      cset->queues.resize(static_cast<std::size_t>(in_ports));
      cset->eow_pending.resize(static_cast<std::size_t>(in_ports), 0);
      csets_by_filter[static_cast<std::size_t>(f)].push_back(cset.get());
      copysets_.push_back(std::move(cset));
    }
  }

  // Stream runtime: target copy sets and the WRR expansion.
  stream_rt_.clear();
  for (int s = 0; s < graph_.num_streams(); ++s) {
    auto rt = std::make_unique<StreamRt>();
    rt->spec = &graph_.stream(s);
    rt->id = s;
    const int consumer = rt->spec->to_filter;
    const auto& consumer_entries = placement_.entries(consumer);
    const auto& consumer_sets = csets_by_filter[static_cast<std::size_t>(consumer)];
    for (std::size_t i = 0; i < consumer_sets.size(); ++i) {
      rt->targets.push_back(consumer_sets[i]);
      for (int c = 0; c < consumer_entries[i].copies; ++c) {
        rt->wrr_order.push_back(static_cast<int>(i));
      }
    }
    stream_rt_.push_back(std::move(rt));
  }

  // Instances.
  for (int f = 0; f < graph_.num_filters(); ++f) {
    const auto& entries = placement_.entries(f);
    const auto& sets = csets_by_filter[static_cast<std::size_t>(f)];
    const auto outs = graph_.out_streams(f);
    int global = 0;
    for (std::size_t p = 0; p < entries.size(); ++p) {
      for (int c = 0; c < entries[p].copies; ++c) {
        auto inst = std::make_unique<Instance>();
        inst->rt = this;
        inst->filter = f;
        inst->index = global++;
        inst->copy_in_host = c;
        inst->cset = sets[p];
        inst->user = graph_.filter(f).factory();
        if (!inst->user) {
          throw std::runtime_error("Runtime: factory for '" +
                                   graph_.filter(f).name + "' returned null");
        }
        if (graph_.filter(f).is_source &&
            dynamic_cast<SourceFilter*>(inst->user.get()) == nullptr) {
          throw std::runtime_error("Runtime: source filter '" +
                                   graph_.filter(f).name +
                                   "' does not derive from SourceFilter");
        }
        for (int out : outs) {
          SimWriter w;
          w.stream = stream_rt_[static_cast<std::size_t>(out)].get();
          w.reset(w.stream->targets.size());
          if (fault_tolerant()) w.ft.resize(w.stream->targets.size());
          inst->writers.push_back(std::move(w));
        }
        inst->m.filter = f;
        inst->m.instance = inst->index;
        inst->m.host = entries[p].host;
        inst->m.host_class = topo_.host(entries[p].host).host_class();
        inst->rng = base_rng_.split(
            static_cast<std::uint64_t>(f) * 1000003ULL +
            static_cast<std::uint64_t>(inst->index) * 257ULL +
            static_cast<std::uint64_t>(uow_index_));
        inst->ctx = std::make_unique<ContextImpl>();
        inst->ctx->inst = inst.get();
        sets[p]->copies.push_back(inst.get());
        instances_.push_back(std::move(inst));
      }
    }
  }

  // EOW bookkeeping: each consumer port expects one marker per producer copy.
  for (int s = 0; s < graph_.num_streams(); ++s) {
    const auto& spec = graph_.stream(s);
    const int producers = placement_.total_copies(spec.from_filter);
    for (CopySet* t : stream_rt_[static_cast<std::size_t>(s)]->targets) {
      t->eow_pending[static_cast<std::size_t>(spec.to_port)] = producers;
    }
  }

  remaining_instances_ = static_cast<int>(instances_.size());

  live_copies_.assign(static_cast<std::size_t>(graph_.num_filters()), 0);
  for (int f = 0; f < graph_.num_filters(); ++f) {
    live_copies_[static_cast<std::size_t>(f)] = placement_.total_copies(f);
  }
  dead_filters_.clear();
}

void Runtime::teardown_uow() {
  for (auto& inst : instances_) {
    metrics_.instances.push_back(inst->m);
  }
  instances_.clear();
  copysets_.clear();
  stream_rt_.clear();
}

sim::SimTime Runtime::run_uow() { return run_uow_outcome().makespan; }

UowOutcome Runtime::run_uow_outcome() {
  auto& sim = topo_.sim();
  const sim::SimTime t0 = sim.now();
  const FaultMetrics faults_before = metrics_.faults;
  build_uow();
  in_uow_ = true;

  // Hosts that died before this UOW began: their copies never join. The
  // copy sets are declared dead up front (stale members are known at UOW
  // admission), so routing excludes them from the first buffer on.
  if (fault_tolerant()) {
    for (auto& cs : copysets_) {
      if (topo_.host(cs->host).alive() || cs->down) continue;
      cs->down = true;
      cs->down_since = sim.now();
      for (Instance* c : cs->copies) kill_instance(*c);
      fail_copyset(*cs);
    }
  }

  for (auto& inst : instances_) {
    if (!inst->dead) start_instance(*inst);
  }
  const std::uint64_t event_limit = sim.events_fired() + config_.max_events_per_uow;
  while (remaining_instances_ > 0 && sim.step()) {
    static const bool debug = std::getenv("DC_DEBUG") != nullptr;
    if (debug && sim.events_fired() % 10000 == 0) {
      std::fprintf(stderr, "ev=%llu t=%.12f remaining=%d\n",
                   (unsigned long long)sim.events_fired(), sim.now(),
                   remaining_instances_);
    }
    if (sim.events_fired() > event_limit) {
      throw std::runtime_error(
          "Runtime: UOW exceeded max_events_per_uow (livelock?) at t=" +
          std::to_string(sim.now()));
    }
  }
  if (remaining_instances_ > 0) {
    throw std::runtime_error(
        "Runtime: UOW deadlocked (no events, instances pending)" +
        std::string(fault_tolerant()
                        ? ""
                        : " — a fault without RuntimeConfig::detection?"));
  }
  const sim::SimTime makespan = uow_done_at_ - t0;
  metrics_.makespan = makespan;
  // Disarm any surviving failure-detection timers, then drain stragglers
  // (acks / markers still in flight) so the virtual clock is quiescent
  // before the next UOW.
  for (auto& inst : instances_) cancel_ack_timers(*inst);
  sim.run();
  in_uow_ = false;

  UowOutcome out;
  out.makespan = makespan;
  out.dead_filters = dead_filters_;
  out.failovers = metrics_.faults.failovers - faults_before.failovers;
  out.retransmits = metrics_.faults.retransmits - faults_before.retransmits;
  out.buffers_lost = metrics_.faults.buffers_lost - faults_before.buffers_lost;
  out.buffers_duplicated =
      metrics_.faults.buffers_duplicated - faults_before.buffers_duplicated;
  const bool perturbed =
      out.failovers > 0 || out.retransmits > 0 || out.buffers_lost > 0 ||
      metrics_.faults.hosts_failed > faults_before.hosts_failed;
  out.status = !dead_filters_.empty() ? UowStatus::kPartialLoss
               : perturbed            ? UowStatus::kDegraded
                                      : UowStatus::kComplete;
  teardown_uow();
  ++uow_index_;
  return out;
}

// ---------------------------------------------------------------------------
// Instance lifecycle
// ---------------------------------------------------------------------------

void Runtime::start_instance(Instance& inst) {
  inst.state = Instance::State::kInit;
  inst.in_init = true;
  inst.charged_ops = 0.0;
  inst.user->init(*inst.ctx);
  inst.in_init = false;
  const double ops = inst.charged_ops;
  inst.m.work_ops += ops;
  inst.busy_start = topo_.sim().now();
  topo_.host(inst.cset->host).cpu().submit(ops, [this, &inst] {
    inst.m.busy_time += topo_.sim().now() - inst.busy_start;
    if (auto* tk = obs_track(inst)) {
      // Spans are reconstructed at completion: the simulator knows a job's
      // start only after its virtual retirement, so emit B then E back to
      // back with the recorded virtual timestamps.
      tk->begin(inst.busy_start, "init");
      tk->end(topo_.sim().now(), "init");
    }
    on_init_done(inst);
  });
}

void Runtime::on_init_done(Instance& inst) {
  if (inst.dead) return;
  inst.state = Instance::State::kIdle;
  if (graph_.filter(inst.filter).is_source) {
    source_step(inst);
  } else {
    try_consume(inst);
  }
}

void Runtime::source_step(Instance& inst) {
  if (inst.dead) return;
  if (inst.state != Instance::State::kIdle) return;
  if (inst.source_exhausted) {
    begin_eow(inst);
    return;
  }
  auto* src = static_cast<SourceFilter*>(inst.user.get());
  inst.charged_ops = 0.0;
  inst.disk_demands.clear();
  inst.state = Instance::State::kBusy;
  const bool more = src->step(*inst.ctx);
  inst.source_exhausted = !more;
  run_source_io_then_compute(inst);
}

void Runtime::run_source_io_then_compute(Instance& inst) {
  if (inst.disk_demands.empty()) {
    submit_compute(inst);
    return;
  }
  // Issue all declared reads concurrently; compute starts when the last one
  // completes (per-disk FIFO serializes same-disk requests).
  auto remaining = std::make_shared<int>(static_cast<int>(inst.disk_demands.size()));
  auto& host = topo_.host(inst.cset->host);
  for (const auto& d : inst.disk_demands) {
    host.disk(d.disk).read(d.bytes, [this, &inst, remaining] {
      if (--*remaining == 0) submit_compute(inst);
    });
  }
  inst.disk_demands.clear();
}

void Runtime::submit_compute(Instance& inst) {
  if (inst.dead) return;  // e.g. a disk read completing after the host died
  const double ops = inst.charged_ops;
  inst.charged_ops = 0.0;
  inst.m.work_ops += ops;
  inst.busy_start = topo_.sim().now();
  topo_.host(inst.cset->host).cpu().submit(ops, [this, &inst] { on_compute_done(inst); });
}

void Runtime::try_consume(Instance& inst) {
  if (inst.dead) return;
  if (inst.state != Instance::State::kIdle) return;
  CopySet& cset = *inst.cset;
  const int ports = static_cast<int>(cset.queues.size());

  // Find the next non-empty port, rotating for fairness across ports.
  int port = -1;
  for (int i = 0; i < ports; ++i) {
    const int p = (cset.rr_port + i) % ports;
    if (!cset.queues[static_cast<std::size_t>(p)].empty()) {
      port = p;
      break;
    }
  }

  if (port < 0) {
    if (ports >= 0 && cset.all_eow() && !inst.eow_executed) {
      begin_eow(inst);
    }
    return;
  }
  cset.rr_port = (port + 1) % ports;

  Delivery d = std::move(cset.queues[static_cast<std::size_t>(port)].front());
  cset.queues[static_cast<std::size_t>(port)].pop_front();

  inst.state = Instance::State::kBusy;  // guard against reentrant wakeups
  inst.m.buffers_in++;
  inst.m.bytes_in += d.buf.size();
  emit_trace("consume", inst, std::to_string(d.buf.size()) + "B");
  if (auto* tk = obs_track(inst)) {
    tk->instant(topo_.sim().now(), "consume",
                static_cast<std::int64_t>(d.buf.size()), port);
  }

  // Receiver-side dequeue frees the producer's flow-control slot.
  on_window_release(*d.producer, d.out_port, d.target);

  // Demand-driven: acknowledge that the buffer is now being processed. The
  // ack is a real message and costs network time (paper Section 2). Gated on
  // the delivered stream's effective policy so per-stream overrides (the
  // compositor's tile-owner fragment stream) do not generate stray acks.
  const StreamSpec& dspec =
      *d.producer->writers[static_cast<std::size_t>(d.out_port)].stream->spec;
  if (effective_policy(config_.policy, dspec) == Policy::kDemandDriven) {
    Instance* producer = d.producer;
    const int out_port = d.out_port;
    const int target = d.target;
    inst.m.acks_sent++;
    metrics_.acks_total++;
    metrics_.ack_bytes_total += config_.ack_bytes;
    if (auto* tk = obs_track(inst)) {
      tk->instant(topo_.sim().now(), "dd.ack",
                  static_cast<std::int64_t>(config_.ack_bytes), target);
    }
    topo_.network().send(cset.host, producer->cset->host, config_.ack_bytes,
                         [this, producer, out_port, target] {
                           on_ack(*producer, out_port, target);
                         });
  }

  inst.charged_ops = 0.0;
  inst.user->process_buffer(*inst.ctx, port, d.buf);
  submit_compute(inst);
}

void Runtime::begin_eow(Instance& inst) {
  emit_trace("eow", inst, "");
  if (auto* tk = obs_track(inst)) tk->instant(topo_.sim().now(), "eow");
  inst.eow_executed = true;
  inst.state = Instance::State::kBusy;
  inst.charged_ops = 0.0;
  inst.user->process_eow(*inst.ctx);
  submit_compute(inst);
}

void Runtime::on_compute_done(Instance& inst) {
  if (inst.dead) return;
  inst.m.busy_time += topo_.sim().now() - inst.busy_start;
  if (auto* tk = obs_track(inst)) {
    tk->begin(inst.busy_start, "compute");
    tk->end(topo_.sim().now(), "compute");
  }
  inst.state = Instance::State::kDraining;
  inst.drain_start = topo_.sim().now();
  drain(inst);
}

void Runtime::drain(Instance& inst) {
  if (inst.dead) return;
  if (inst.state != Instance::State::kDraining) return;
  while (!inst.pending.empty()) {
    if (!dispatch_one(inst)) {
      emit_trace("stall", inst,
                 std::to_string(inst.pending.size()) + " pending");
      if (auto* tk = obs_track(inst)) {
        tk->instant(topo_.sim().now(), "stall",
                    static_cast<std::int64_t>(inst.pending.size()));
      }
      return;  // stalled on a window; resumed by credit
    }
  }
  inst.m.stall_time += topo_.sim().now() - inst.drain_start;
  inst.drain_start = topo_.sim().now();  // re-entries must not double-count
  if (inst.eow_executed) {
    // Finish-flush: a fault-tolerant producer stays responsible for its
    // dispatched buffers until consumers take them over; finishing earlier
    // would orphan them if a target dies. Re-entered by release / ack /
    // reclaim until the retention windows are empty.
    if (fault_tolerant() && has_outstanding(inst)) return;
    finish_instance(inst);
    return;
  }
  inst.state = Instance::State::kIdle;
  if (graph_.filter(inst.filter).is_source) {
    source_step(inst);
  } else {
    try_consume(inst);
  }
}

int Runtime::pick_target(Instance& inst, int out_port, int key) {
  SimWriter& w = inst.writers[static_cast<std::size_t>(out_port)];
  const auto& targets = w.stream->targets;
  return w.pick(
      effective_policy(config_.policy, *w.stream->spec), config_.window,
      w.stream->wrr_order,
      [&](int t) { return targets[static_cast<std::size_t>(t)]->declared_dead; },
      [&](int t) {
        return targets[static_cast<std::size_t>(t)]->host == inst.cset->host;
      },
      key);
}

bool Runtime::dispatch_one(Instance& inst) {
  PendingOut& out = inst.pending.front();
  SimWriter& wq = inst.writers[static_cast<std::size_t>(out.port)];
  if (fault_tolerant()) {
    // Every target copy set of this stream is dead: nothing can ever take
    // the buffer. Drop it (counted) so the producer — and the UOW — can
    // still terminate in degraded mode.
    bool any_live = false;
    for (CopySet* t : wq.stream->targets) {
      if (!t->declared_dead) { any_live = true; break; }
    }
    if (!any_live) {
      metrics_.faults.buffers_lost++;
      emit_trace("drop", inst,
                 wq.stream->spec->name + " all targets dead, " +
                     std::to_string(out.buf.size()) + "B");
      inst.pending.pop_front();
      return true;
    }
  }
  const int target = pick_target(inst, out.port, out.buf.route_key());
  if (target < 0) return false;

  SimWriter& w = inst.writers[static_cast<std::size_t>(out.port)];
  CopySet* cset = w.stream->targets[static_cast<std::size_t>(target)];

  w.on_dispatch(target);
  if (auto* tk = obs_track(inst)) {
    // Routing decision: chosen target plus the policy's outstanding count
    // for it (unacked under DD, in-flight under RR/WRR) after the dispatch.
    const auto& counts =
        effective_policy(config_.policy, *w.stream->spec) ==
                Policy::kDemandDriven
            ? w.unacked
            : w.in_flight;
    tk->instant(topo_.sim().now(), "policy.pick", target,
                counts[static_cast<std::size_t>(target)]);
  }
  // Retain a copy until the consumer takes responsibility (payload is
  // shared, so this costs an envelope, not a data copy).
  if (fault_tolerant()) {
    w.ft[static_cast<std::size_t>(target)].outstanding.push_back(out.buf);
  }

  auto& sm = metrics_.streams[static_cast<std::size_t>(w.stream->id)];
  sm.buffers++;
  sm.payload_bytes += out.buf.size();
  sm.message_bytes += out.buf.size() + config_.header_bytes;
  inst.m.buffers_out++;
  inst.m.bytes_out += out.buf.size();

  Delivery d;
  d.buf = std::move(out.buf);
  d.producer = &inst;
  d.out_port = out.port;
  d.target = target;
  const int out_port = out.port;
  inst.pending.pop_front();  // `out` is dangling from here on

  emit_trace("dispatch", inst,
             w.stream->spec->name + " -> h" + std::to_string(cset->host));

  const std::uint64_t msg_bytes = d.buf.size() + config_.header_bytes;
  // Move the delivery through the network; it lands in the copy set queue.
  auto shared = std::make_shared<Delivery>(std::move(d));
  topo_.network().send(inst.cset->host, cset->host, msg_bytes,
                       [this, cset, shared] { deliver(*cset, std::move(*shared)); });
  arm_ack_timer(inst, out_port, target);
  return true;
}

void Runtime::deliver(CopySet& cset, Delivery d) {
  if (cset.down || cset.declared_dead) {
    // A delivery that raced the failure (sent before the crash was seen, or
    // to a fenced set). Drop it without releasing the producer's window —
    // the failover reclaim settles the accounting exactly once.
    if (trace_.enabled()) {
      trace_.emit(topo_.sim().now(), "drop",
                  "h" + std::to_string(cset.host) + " dead, " +
                      std::to_string(d.buf.size()) + "B");
    }
    return;
  }
  const int port = graph_.stream(d.producer
                                      ->writers[static_cast<std::size_t>(d.out_port)]
                                      .stream->id)
                       .to_port;
  cset.queues[static_cast<std::size_t>(port)].push_back(std::move(d));
  wake_copies(cset);
}

void Runtime::wake_copies(CopySet& cset) {
  for (Instance* copy : cset.copies) {
    if (copy->dead) continue;
    if (copy->state == Instance::State::kIdle) try_consume(*copy);
  }
}

void Runtime::on_eow_marker(CopySet& cset, int in_port) {
  auto& pending = cset.eow_pending[static_cast<std::size_t>(in_port)];
  // kill_instance settles dead producers' markers eagerly; a marker that was
  // already in flight then arrives over-complete — ignore it.
  if (pending > 0) --pending;
  wake_copies(cset);
}

void Runtime::finish_instance(Instance& inst) {
  emit_trace("finish", inst, "");
  if (auto* tk = obs_track(inst)) tk->instant(topo_.sim().now(), "finish");
  inst.charged_ops = 0.0;
  inst.user->finalize(*inst.ctx);
  inst.state = Instance::State::kFinished;

  // Send end-of-work markers to every consumer copy set, after all data
  // buffers (FIFO links guarantee markers cannot overtake data).
  for (auto& w : inst.writers) {
    const int in_port = w.stream->spec->to_port;
    for (CopySet* t : w.stream->targets) {
      topo_.network().send(inst.cset->host, t->host, config_.eow_bytes,
                           [this, t, in_port] { on_eow_marker(*t, in_port); });
    }
  }

  if (--remaining_instances_ == 0) {
    uow_done_at_ = topo_.sim().now();
  }
}

void Runtime::on_window_release(Instance& producer, int out_port, int target) {
  if (producer.dead) return;
  SimWriter& w = producer.writers[static_cast<std::size_t>(out_port)];
  w.on_dequeue(target);
  if (fault_tolerant() && effective_policy(config_.policy, *w.stream->spec) !=
                              Policy::kDemandDriven) {
    // RR/WRR: the dequeue is where the consumer takes responsibility — the
    // oldest retained buffer for this target is now safe to release.
    auto& ft = w.ft[static_cast<std::size_t>(target)];
    assert(!ft.outstanding.empty());
    ft.outstanding.pop_front();
  }
  if (producer.state == Instance::State::kDraining) drain(producer);
}

void Runtime::on_ack(Instance& producer, int out_port, int target) {
  if (producer.dead) return;
  SimWriter& w = producer.writers[static_cast<std::size_t>(out_port)];
  if (fault_tolerant()) {
    auto& ft = w.ft[static_cast<std::size_t>(target)];
    CopySet& cs = *w.stream->targets[static_cast<std::size_t>(target)];
    if (cs.declared_dead || ft.outstanding.empty()) {
      // The ack raced the failover: its buffer was already reclaimed and
      // retransmitted elsewhere, so a consumer may process it twice.
      metrics_.faults.buffers_duplicated++;
      if (trace_.enabled()) {
        trace_.emit(topo_.sim().now(), "dup-ack",
                    graph_.filter(producer.filter).name + "#" +
                        std::to_string(producer.index) + " <- h" +
                        std::to_string(cs.host));
      }
      return;
    }
    ft.outstanding.pop_front();
    ft.acks_seen++;
    ft.strikes = 0;
    cs.suspected_since = -1.0;
    w.on_ack(target);
    if (ft.outstanding.empty() && ft.timer != 0) {
      topo_.sim().cancel(ft.timer);
      ft.timer = 0;
    }
    if (producer.state == Instance::State::kDraining) drain(producer);
    return;
  }
  w.on_ack(target);
  if (producer.state == Instance::State::kDraining) drain(producer);
}

// ---------------------------------------------------------------------------
// Fault handling
// ---------------------------------------------------------------------------

void Runtime::on_host_failed(int host) {
  if (!in_uow_ || !fault_tolerant()) return;
  metrics_.faults.hosts_failed++;
  const sim::SimTime now = topo_.sim().now();
  for (auto& cs : copysets_) {
    if (cs->host != host || cs->down) continue;
    cs->down = true;
    cs->down_since = now;
    for (Instance* c : cs->copies) kill_instance(*c);
    // Membership mode learns of the crash instantly and fails over now;
    // ack-timeout mode waits for producers to notice the silence.
    if (config_.detection == FailureDetection::kMembership) fail_copyset(*cs);
  }
}

void Runtime::on_host_partitioned(int host, bool partitioned) {
  if (!in_uow_ || !fault_tolerant() || !partitioned) return;
  if (config_.detection != FailureDetection::kMembership) return;
  // The membership service reports the partition; fence the unreachable
  // copy sets exactly like crashed ones (their hosts stay alive, but no
  // message can reach them). Ack-timeout mode detects this on its own.
  for (auto& cs : copysets_) {
    if (cs->host != host || cs->down || cs->declared_dead) continue;
    if (cs->suspected_since < 0.0) cs->suspected_since = topo_.sim().now();
    for (Instance* c : cs->copies) kill_instance(*c);
    fail_copyset(*cs);
  }
}

void Runtime::fail_copyset(CopySet& cset) {
  if (cset.declared_dead) return;
  cset.declared_dead = true;
  const sim::SimTime now = topo_.sim().now();
  metrics_.faults.failovers++;
  const sim::SimTime since =
      cset.down_since >= 0.0 ? cset.down_since : cset.suspected_since;
  if (since >= 0.0) {
    const sim::SimTime lat = now - since;
    metrics_.faults.recovery_latency_total += lat;
    metrics_.faults.recovery_latency_max =
        std::max(metrics_.faults.recovery_latency_max, lat);
  }
  if (trace_.enabled()) {
    trace_.emit(now, "failover",
                graph_.filter(cset.filter).name + "@h" +
                    std::to_string(cset.host));
  }
  // Fence any copies that are still nominally alive (partition case).
  for (Instance* c : cset.copies) kill_instance(*c);
  // Undelivered queue contents die with the set; the producers' reclaim
  // below re-counts them through in_flight, so just drop here.
  for (auto& q : cset.queues) q.clear();
  // Reclaim + retransmit from every live producer that was feeding this set.
  for (auto& inst : instances_) {
    if (inst->dead) continue;
    for (std::size_t p = 0; p < inst->writers.size(); ++p) {
      SimWriter& w = inst->writers[p];
      const auto& targets = w.stream->targets;
      for (std::size_t t = 0; t < targets.size(); ++t) {
        if (targets[t] == &cset) {
          reclaim_outstanding(*inst, static_cast<int>(p), static_cast<int>(t));
        }
      }
    }
  }
  // Reclaimed buffers sit at the producers' queue fronts; get them moving.
  for (auto& inst : instances_) {
    if (!inst->dead) kick_dispatch(*inst);
  }
}

void Runtime::kill_instance(Instance& inst) {
  if (inst.dead || inst.state == Instance::State::kFinished) return;
  inst.dead = true;
  cancel_ack_timers(inst);
  const sim::SimTime now = topo_.sim().now();
  // Outputs it produced but never dispatched are gone for good.
  metrics_.faults.buffers_lost += inst.pending.size();
  inst.pending.clear();
  emit_trace("copy-dead", inst, "");
  int& live = live_copies_[static_cast<std::size_t>(inst.filter)];
  if (--live == 0) dead_filters_.push_back(inst.filter);
  // Settle its end-of-work obligations: every consumer copy set was
  // expecting one marker from this copy and will never get it.
  for (auto& w : inst.writers) {
    const int in_port = w.stream->spec->to_port;
    for (CopySet* t : w.stream->targets) {
      auto& pending = t->eow_pending[static_cast<std::size_t>(in_port)];
      if (pending > 0) --pending;
    }
    for (CopySet* t : w.stream->targets) {
      if (!t->declared_dead && !t->down) wake_copies(*t);
    }
  }
  if (--remaining_instances_ == 0) uow_done_at_ = now;
}

void Runtime::reclaim_outstanding(Instance& inst, int out_port, int target) {
  SimWriter& w = inst.writers[static_cast<std::size_t>(out_port)];
  auto& ft = w.ft[static_cast<std::size_t>(target)];
  if (ft.timer != 0) {
    topo_.sim().cancel(ft.timer);
    ft.timer = 0;
  }
  ft.strikes = 0;
  // Buffers sent but never dequeued (queued at the dead set, or still in the
  // network) are lost copies; everything retained is re-dispatched, so the
  // payload still reaches a live consumer at least once.
  metrics_.faults.buffers_lost +=
      static_cast<std::uint64_t>(w.in_flight[static_cast<std::size_t>(target)]);
  if (!ft.outstanding.empty()) {
    metrics_.faults.retransmits += ft.outstanding.size();
    emit_trace("retransmit", inst,
               std::to_string(ft.outstanding.size()) + " to " +
                   w.stream->spec->name);
    // Requeue at the front, oldest first, so retransmissions precede any
    // fresh output the copy produces later.
    for (auto it = ft.outstanding.rbegin(); it != ft.outstanding.rend(); ++it) {
      inst.pending.push_front(PendingOut{out_port, std::move(*it)});
    }
    ft.outstanding.clear();
  }
  w.in_flight[static_cast<std::size_t>(target)] = 0;
  w.unacked[static_cast<std::size_t>(target)] = 0;
}

void Runtime::arm_ack_timer(Instance& inst, int out_port, int target) {
  if (config_.detection != FailureDetection::kAckTimeout) return;
  SimWriter& w = inst.writers[static_cast<std::size_t>(out_port)];
  // Ack-timeout detection only makes sense on streams that actually carry
  // acks; a per-stream override away from DD has none to time out on.
  if (effective_policy(config_.policy, *w.stream->spec) !=
      Policy::kDemandDriven) {
    return;
  }
  auto& ft = w.ft[static_cast<std::size_t>(target)];
  if (ft.timer != 0 || ft.outstanding.empty()) return;
  if (w.stream->targets[static_cast<std::size_t>(target)]->declared_dead) return;
  const sim::SimTime delay =
      std::min(config_.ack_timeout *
                   std::pow(config_.ack_timeout_backoff, ft.strikes),
               config_.ack_timeout_max);
  const std::uint64_t snapshot = ft.acks_seen;
  Instance* ip = &inst;
  ft.timer = topo_.sim().after(delay, [this, ip, out_port, target, snapshot] {
    on_ack_timeout(*ip, out_port, target, snapshot);
  });
}

void Runtime::on_ack_timeout(Instance& inst, int out_port, int target,
                             std::uint64_t acks_snapshot) {
  SimWriter& w = inst.writers[static_cast<std::size_t>(out_port)];
  auto& ft = w.ft[static_cast<std::size_t>(target)];
  ft.timer = 0;
  if (inst.dead || !in_uow_) return;
  CopySet& cs = *w.stream->targets[static_cast<std::size_t>(target)];
  if (cs.declared_dead || ft.outstanding.empty()) return;
  if (ft.acks_seen != acks_snapshot) {
    // Progress since the timer was armed — the set is slow, not dead.
    ft.strikes = 0;
    arm_ack_timer(inst, out_port, target);
    return;
  }
  if (cs.suspected_since < 0.0) cs.suspected_since = topo_.sim().now();
  if (++ft.strikes >= config_.ack_timeout_strikes) {
    fail_copyset(cs);
    return;
  }
  arm_ack_timer(inst, out_port, target);
}

void Runtime::cancel_ack_timers(Instance& inst) {
  for (auto& w : inst.writers) {
    for (auto& ft : w.ft) {
      if (ft.timer != 0) {
        topo_.sim().cancel(ft.timer);
        ft.timer = 0;
      }
    }
  }
}

bool Runtime::has_outstanding(const Instance& inst) const {
  for (const auto& w : inst.writers) {
    for (const auto& ft : w.ft) {
      if (!ft.outstanding.empty()) return true;
    }
  }
  return false;
}

void Runtime::kick_dispatch(Instance& inst) {
  if (inst.dead || inst.pending.empty()) return;
  if (inst.state == Instance::State::kDraining) {
    drain(inst);
  } else if (inst.state == Instance::State::kIdle) {
    inst.state = Instance::State::kDraining;
    inst.drain_start = topo_.sim().now();
    drain(inst);
  }
}

}  // namespace dc::core
