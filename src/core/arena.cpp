#include "core/arena.hpp"

#include <atomic>
#include <bit>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace dc::core {

namespace {

/// Smallest retained slot; tiny control payloads all share one class.
constexpr std::size_t kMinClassBytes = 256;

std::size_t class_of(std::size_t n) {
  return n <= kMinClassBytes ? kMinClassBytes : std::bit_ceil(n);
}

}  // namespace

struct BufferArena::Pool {
  std::mutex mu;
  std::unordered_map<std::size_t,
                     std::vector<std::unique_ptr<std::vector<std::byte>>>>
      free;
  std::size_t retained_bytes = 0;
  ArenaOptions opts;  ///< retention caps, mutable via set_retention()

  std::atomic<std::uint64_t> leased{0};
  std::atomic<std::uint64_t> returned{0};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> bytes{0};
  std::atomic<std::uint64_t> copies{0};
  std::atomic<std::uint64_t> copy_bytes{0};
};

BufferArena::BufferArena(ArenaOptions options)
    : pool_(std::make_shared<Pool>()) {
  pool_->opts = options;
}

std::shared_ptr<std::vector<std::byte>> BufferArena::lease(
    std::size_t capacity_bytes) {
  const std::size_t cls = class_of(capacity_bytes);
  std::unique_ptr<std::vector<std::byte>> slot;
  {
    std::lock_guard<std::mutex> lk(pool_->mu);
    auto it = pool_->free.find(cls);
    if (it != pool_->free.end() && !it->second.empty()) {
      slot = std::move(it->second.back());
      it->second.pop_back();
      pool_->retained_bytes -= cls;
    }
  }
  if (slot) {
    pool_->hits.fetch_add(1, std::memory_order_relaxed);
  } else {
    pool_->misses.fetch_add(1, std::memory_order_relaxed);
    slot = std::make_unique<std::vector<std::byte>>();
    slot->reserve(cls);
  }
  pool_->leased.fetch_add(1, std::memory_order_relaxed);
  pool_->bytes.fetch_add(capacity_bytes, std::memory_order_relaxed);

  // The deleter IS the return path: it runs exactly once, when the last
  // Buffer / Frame / cache entry sharing the slot lets go. Capturing the
  // pool by shared_ptr keeps returns safe past the arena's own lifetime.
  std::shared_ptr<Pool> pool = pool_;
  return std::shared_ptr<std::vector<std::byte>>(
      slot.release(), [pool, cls](std::vector<std::byte>* v) {
        pool->returned.fetch_add(1, std::memory_order_relaxed);
        v->clear();  // keeps capacity; bytes are dead, the slab is not
        std::unique_ptr<std::vector<std::byte>> owned(v);
        std::lock_guard<std::mutex> lk(pool->mu);
        if (pool->retained_bytes + cls <= pool->opts.max_retained_bytes) {
          auto& bucket = pool->free[cls];
          if (bucket.size() < pool->opts.max_slots_per_class) {
            bucket.push_back(std::move(owned));
            pool->retained_bytes += cls;
          }
        }
        // Not refiled: `owned` frees the slab on scope exit.
      });
}

Buffer BufferArena::make(std::size_t capacity_bytes) {
  return Buffer::adopt(lease(capacity_bytes), capacity_bytes);
}

std::size_t BufferArena::slot_capacity(std::size_t capacity_bytes) {
  return class_of(capacity_bytes);
}

void BufferArena::note_payload_copy(std::size_t bytes) {
  pool_->copies.fetch_add(1, std::memory_order_relaxed);
  pool_->copy_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

ArenaOptions BufferArena::set_retention(ArenaOptions options) {
  std::lock_guard<std::mutex> lk(pool_->mu);
  ArenaOptions prev = pool_->opts;
  pool_->opts = options;
  // Trim eagerly so a tightened cap takes effect now, not at next churn.
  // Per-class first (cheap), then total bytes, dropping from arbitrary
  // classes until under the cap — freed slots just die with their
  // unique_ptr.
  for (auto& [cls, bucket] : pool_->free) {
    while (bucket.size() > options.max_slots_per_class) {
      bucket.pop_back();
      pool_->retained_bytes -= cls;
    }
  }
  for (auto it = pool_->free.begin();
       pool_->retained_bytes > options.max_retained_bytes &&
       it != pool_->free.end();
       ++it) {
    auto& [cls, bucket] = *it;
    while (!bucket.empty() &&
           pool_->retained_bytes > options.max_retained_bytes) {
      bucket.pop_back();
      pool_->retained_bytes -= cls;
    }
  }
  return prev;
}

ArenaOptions BufferArena::retention() const {
  std::lock_guard<std::mutex> lk(pool_->mu);
  return pool_->opts;
}

ArenaStats BufferArena::stats() const {
  ArenaStats s;
  s.slots_leased = pool_->leased.load(std::memory_order_relaxed);
  s.slots_returned = pool_->returned.load(std::memory_order_relaxed);
  s.pool_hits = pool_->hits.load(std::memory_order_relaxed);
  s.pool_misses = pool_->misses.load(std::memory_order_relaxed);
  s.bytes_leased = pool_->bytes.load(std::memory_order_relaxed);
  s.payload_copies = pool_->copies.load(std::memory_order_relaxed);
  s.payload_copy_bytes = pool_->copy_bytes.load(std::memory_order_relaxed);
  return s;
}

BufferArena& BufferArena::global() {
  static BufferArena arena;
  return arena;
}

}  // namespace dc::core
