#pragma once

#include <vector>

#include "core/placement.hpp"
#include "sim/cluster.hpp"

namespace dc::core {

/// Options for the automatic copy-count heuristic.
struct AutoPlaceOptions {
  /// Hosts whose effective per-core speed falls below this fraction of the
  /// fastest candidate get no copies (not worth the ack/transfer traffic).
  double min_speed_fraction = 0.35;
  /// Upper bound on copies per host (0 = one per core).
  int max_copies_per_host = 0;
};

/// Chooses transparent-copy counts for a compute-bound filter across
/// `hosts` — the automation the paper leaves as future work (footnote 1:
/// "We are in the process of examining various mechanisms to automate some
/// of these steps").
///
/// Heuristic: one copy per core on every candidate host whose effective
/// per-core speed (clock speed divided by the fair-share dilution from
/// currently known background jobs) is at least `min_speed_fraction` of the
/// fastest candidate's. Returns the chosen (host, copies) entries and adds
/// them to `placement`.
std::vector<Placement::Entry> auto_place_copies(Placement& placement, int filter,
                                                sim::Topology& topo,
                                                const std::vector<int>& hosts,
                                                const AutoPlaceOptions& options = {});

/// Re-places filter copies off dead hosts: every entry on a host marked in
/// `dead_hosts` (indexed by host id) moves — copies and entry order
/// preserved — to the surviving host with the fewest copies of that filter
/// (ties to the lowest host id). Preserving per-filter copy counts and entry
/// order keeps the runtime's copy-indexed state (RNG splits, copy-set
/// geometry) identical in shape, so a re-placed run stays deterministic.
/// Topology-free on purpose: the distributed engine calls this with only a
/// liveness bitmap, no simulator. Throws std::invalid_argument when a filter
/// has placed copies but every host is dead.
[[nodiscard]] Placement replace_dead_hosts(const Placement& placement,
                                           int num_filters, int num_hosts,
                                           const std::vector<char>& dead_hosts);

}  // namespace dc::core
