#include "core/autoplace.hpp"

#include <algorithm>
#include <stdexcept>

namespace dc::core {

namespace {

/// Effective per-core speed once the fair-share dilution from background
/// jobs is taken into account: with c cores and b background jobs, one more
/// runnable filter job would run at speed * min(1, c / (b + 1)).
double effective_speed(const sim::Host& host) {
  const auto& cpu = host.cpu();
  const double dilution = std::min(
      1.0, static_cast<double>(cpu.cores()) /
               static_cast<double>(cpu.background_jobs() + 1));
  return cpu.ops_per_sec() * dilution;
}

}  // namespace

std::vector<Placement::Entry> auto_place_copies(Placement& placement, int filter,
                                                sim::Topology& topo,
                                                const std::vector<int>& hosts,
                                                const AutoPlaceOptions& options) {
  if (hosts.empty()) {
    throw std::invalid_argument("auto_place_copies: no candidate hosts");
  }
  double best = 0.0;
  for (int h : hosts) best = std::max(best, effective_speed(topo.host(h)));
  if (best <= 0.0) {
    throw std::invalid_argument("auto_place_copies: no usable host");
  }

  std::vector<Placement::Entry> chosen;
  for (int h : hosts) {
    const sim::Host& host = topo.host(h);
    if (effective_speed(host) < options.min_speed_fraction * best) continue;
    int copies = host.cpu().cores();
    if (options.max_copies_per_host > 0) {
      copies = std::min(copies, options.max_copies_per_host);
    }
    chosen.push_back(Placement::Entry{h, copies});
  }
  if (chosen.empty()) {
    // Degenerate: everything below threshold; fall back to the fastest host.
    int best_host = hosts.front();
    for (int h : hosts) {
      if (effective_speed(topo.host(h)) > effective_speed(topo.host(best_host))) {
        best_host = h;
      }
    }
    chosen.push_back(Placement::Entry{best_host, topo.host(best_host).cpu().cores()});
  }
  for (const auto& e : chosen) placement.place(filter, e.host, e.copies);
  return chosen;
}

}  // namespace dc::core
