#include "core/autoplace.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace dc::core {

namespace {

/// Effective per-core speed once the fair-share dilution from background
/// jobs is taken into account: with c cores and b background jobs, one more
/// runnable filter job would run at speed * min(1, c / (b + 1)).
double effective_speed(const sim::Host& host) {
  const auto& cpu = host.cpu();
  const double dilution = std::min(
      1.0, static_cast<double>(cpu.cores()) /
               static_cast<double>(cpu.background_jobs() + 1));
  return cpu.ops_per_sec() * dilution;
}

}  // namespace

std::vector<Placement::Entry> auto_place_copies(Placement& placement, int filter,
                                                sim::Topology& topo,
                                                const std::vector<int>& hosts,
                                                const AutoPlaceOptions& options) {
  if (hosts.empty()) {
    throw std::invalid_argument("auto_place_copies: no candidate hosts");
  }
  double best = 0.0;
  for (int h : hosts) best = std::max(best, effective_speed(topo.host(h)));
  if (best <= 0.0) {
    throw std::invalid_argument("auto_place_copies: no usable host");
  }

  std::vector<Placement::Entry> chosen;
  for (int h : hosts) {
    const sim::Host& host = topo.host(h);
    if (effective_speed(host) < options.min_speed_fraction * best) continue;
    int copies = host.cpu().cores();
    if (options.max_copies_per_host > 0) {
      copies = std::min(copies, options.max_copies_per_host);
    }
    chosen.push_back(Placement::Entry{h, copies});
  }
  if (chosen.empty()) {
    // Degenerate: everything below threshold; fall back to the fastest host.
    int best_host = hosts.front();
    for (int h : hosts) {
      if (effective_speed(topo.host(h)) > effective_speed(topo.host(best_host))) {
        best_host = h;
      }
    }
    chosen.push_back(Placement::Entry{best_host, topo.host(best_host).cpu().cores()});
  }
  for (const auto& e : chosen) placement.place(filter, e.host, e.copies);
  return chosen;
}

Placement replace_dead_hosts(const Placement& placement, int num_filters,
                             int num_hosts, const std::vector<char>& dead_hosts) {
  const auto is_dead = [&](int h) {
    return h >= 0 && static_cast<std::size_t>(h) < dead_hosts.size() &&
           dead_hosts[static_cast<std::size_t>(h)] != 0;
  };
  Placement out;
  for (int f = 0; f < num_filters; ++f) {
    const auto& entries = placement.entries(f);
    if (entries.empty()) continue;
    // Per-filter copy load of each surviving host, for least-loaded choice.
    std::vector<int> load(static_cast<std::size_t>(num_hosts), 0);
    for (const auto& e : entries) {
      if (!is_dead(e.host) && e.host < num_hosts) {
        load[static_cast<std::size_t>(e.host)] += e.copies;
      }
    }
    for (const auto& e : entries) {
      if (!is_dead(e.host)) {
        out.place(f, e.host, e.copies);
        continue;
      }
      int target = -1;
      for (int h = 0; h < num_hosts; ++h) {
        if (is_dead(h)) continue;
        if (target < 0 || load[static_cast<std::size_t>(h)] <
                              load[static_cast<std::size_t>(target)]) {
          target = h;
        }
      }
      if (target < 0) {
        throw std::invalid_argument(
            "replace_dead_hosts: no surviving host for filter " +
            std::to_string(f));
      }
      load[static_cast<std::size_t>(target)] += e.copies;
      out.place(f, target, e.copies);
    }
  }
  return out;
}

}  // namespace dc::core
