#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/buffer.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace dc::core {

/// Execution context handed to filter callbacks. Implemented by the runtime;
/// filters use it to emit output buffers, declare compute / I/O demand, and
/// discover their own placement.
class FilterContext {
 public:
  virtual ~FilterContext() = default;

  // ---- identity / placement ------------------------------------------------
  /// Global index of this transparent copy among all copies of the filter.
  [[nodiscard]] virtual int instance_index() const = 0;
  /// Total number of transparent copies of this filter.
  [[nodiscard]] virtual int num_instances() const = 0;
  /// Index of this copy within its host's copy set.
  [[nodiscard]] virtual int copy_in_host() const = 0;
  /// Number of copies of this filter in this host's copy set.
  [[nodiscard]] virtual int copies_on_host() const = 0;
  /// Simulated host id this copy runs on.
  [[nodiscard]] virtual int host() const = 0;
  /// Host class ("rogue", "blue", ...) for grouping.
  [[nodiscard]] virtual const std::string& host_class() const = 0;
  /// Index of the unit-of-work currently being processed.
  [[nodiscard]] virtual int uow_index() const = 0;

  // ---- time / randomness ---------------------------------------------------
  [[nodiscard]] virtual sim::SimTime now() const = 0;
  [[nodiscard]] virtual sim::Rng& rng() = 0;

  // ---- demand declaration --------------------------------------------------
  /// Declares `ops` units of CPU work for the current callback. The runtime
  /// converts ops to virtual time through the host's processor-sharing CPU.
  virtual void charge(double ops) = 0;

  /// Declares a read of `bytes` from the host-local disk `local_disk`
  /// (source filters only; the read completes before this step's compute).
  virtual void read_disk(int local_disk, std::uint64_t bytes) = 0;

  /// Reports wall seconds this copy just spent blocked on real storage I/O
  /// (the out-of-core io::ChunkReader path). The native engine accounts it
  /// in exec::InstanceMetrics::io_wait_time; the simulator ignores it — its
  /// disks are virtual and already charged through read_disk().
  virtual void note_io_wait(double seconds) { (void)seconds; }

  // ---- stream output -------------------------------------------------------
  /// Emits a buffer on output port `port`. Buffers are released downstream
  /// when the current callback's virtual compute completes; the copy does not
  /// consume further input until all emitted buffers have been accepted by
  /// the flow-control windows (backpressure).
  virtual void write(int port, Buffer buf) = 0;

  /// Creates an empty buffer sized to the negotiated buffer size of output
  /// port `port`.
  [[nodiscard]] virtual Buffer make_buffer(int port) const = 0;

  [[nodiscard]] virtual int num_input_ports() const = 0;
  [[nodiscard]] virtual int num_output_ports() const = 0;
  [[nodiscard]] virtual std::size_t buffer_bytes(int out_port) const = 0;
};

/// A user-defined application component (paper Section 2). One Filter object
/// is instantiated per transparent copy per unit-of-work; the object is
/// unaware of its siblings ("transparent copies").
///
/// Lifecycle per UOW:  init -> process_buffer* -> process_eow -> finalize.
class Filter {
 public:
  virtual ~Filter() = default;

  /// Pre-allocate resources; may charge() but must not write().
  virtual void init(FilterContext& ctx) { (void)ctx; }

  /// Handles one input buffer from `port`. Runs the real computation, then
  /// reports its cost via ctx.charge().
  virtual void process_buffer(FilterContext& ctx, int port, const Buffer& buf) = 0;

  /// Called once after every input stream delivered its end-of-work marker
  /// and all queued buffers were consumed. Filters that accumulate state
  /// (e.g. a z-buffer) flush it here.
  virtual void process_eow(FilterContext& ctx) { (void)ctx; }

  /// Release resources.
  virtual void finalize(FilterContext& ctx) { (void)ctx; }
};

/// A filter with no input streams, driven by the runtime. Each step()
/// typically reads one chunk from disk and emits buffers; returning false
/// signals end-of-work.
class SourceFilter : public Filter {
 public:
  void process_buffer(FilterContext&, int, const Buffer&) final {
    // Source filters have no input ports; the runtime never calls this.
  }

  /// Performs one unit of production. Return true if more work remains.
  virtual bool step(FilterContext& ctx) = 0;
};

using FilterFactory = std::function<std::unique_ptr<Filter>()>;

}  // namespace dc::core
