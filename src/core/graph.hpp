#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/filter.hpp"
#include "core/policy.hpp"

namespace dc::core {

/// Declarative description of one filter in the application graph.
struct FilterSpec {
  std::string name;
  FilterFactory factory;
  int num_input_ports = 0;
  int num_output_ports = 0;
  bool is_source = false;
};

/// A logical unidirectional stream connecting an output port of one filter
/// to an input port of another (paper Section 2). The runtime picks the
/// actual buffer size within [min_buffer_bytes, max_buffer_bytes].
struct StreamSpec {
  std::string name;
  int from_filter = -1;
  int from_port = 0;
  int to_filter = -1;
  int to_port = 0;
  std::size_t min_buffer_bytes = 4 * 1024;
  std::size_t max_buffer_bytes = 256 * 1024;
  /// Per-stream writer-policy override. Most streams inherit the run-wide
  /// RuntimeConfig::policy; a stream that needs content-addressed routing
  /// (the compositor's fragment stream under Policy::kTileOwner) sets it
  /// here without disturbing the rest of the graph.
  std::optional<Policy> policy;
};

/// The writer policy actually in effect on a stream: its override if set,
/// else the run-wide default. Every engine routes through this so a graph
/// can mix, say, DD data distribution with tile-owner fragment routing.
[[nodiscard]] inline Policy effective_policy(Policy run_default,
                                             const StreamSpec& spec) {
  return spec.policy.value_or(run_default);
}

/// The application processing structure: filters + streams. Pure
/// specification — building a Graph performs no instantiation.
class Graph {
 public:
  /// Adds a filter; `is_source` filters must derive from SourceFilter.
  int add_filter(std::string name, FilterFactory factory, bool is_source = false);

  /// Convenience for sources.
  int add_source(std::string name, FilterFactory factory) {
    return add_filter(std::move(name), std::move(factory), /*is_source=*/true);
  }

  /// Connects from_filter.out[from_port] -> to_filter.in[to_port]. Ports are
  /// created implicitly and must be used densely. Each input port accepts
  /// exactly one stream. Returns the stream id.
  int connect(int from_filter, int from_port, int to_filter, int to_port,
              std::size_t min_buffer_bytes = 4 * 1024,
              std::size_t max_buffer_bytes = 256 * 1024);

  [[nodiscard]] int num_filters() const { return static_cast<int>(filters_.size()); }
  [[nodiscard]] int num_streams() const { return static_cast<int>(streams_.size()); }
  [[nodiscard]] const FilterSpec& filter(int f) const {
    return filters_.at(static_cast<std::size_t>(f));
  }
  [[nodiscard]] const StreamSpec& stream(int s) const {
    return streams_.at(static_cast<std::size_t>(s));
  }
  [[nodiscard]] StreamSpec& stream(int s) {
    return streams_.at(static_cast<std::size_t>(s));
  }

  /// Streams leaving filter f, ordered by output port.
  [[nodiscard]] std::vector<int> out_streams(int f) const;
  /// Streams entering filter f, ordered by input port.
  [[nodiscard]] std::vector<int> in_streams(int f) const;

  /// Checks structural sanity (dense ports, sources have no inputs, no
  /// cycles); throws std::invalid_argument on violation.
  void validate() const;

 private:
  std::vector<FilterSpec> filters_;
  std::vector<StreamSpec> streams_;
};

}  // namespace dc::core
