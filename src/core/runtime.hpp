#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/graph.hpp"
#include "core/metrics.hpp"
#include "core/placement.hpp"
#include "core/policy.hpp"
#include "obs/recorder.hpp"
#include "sim/cluster.hpp"
#include "sim/trace.hpp"

namespace dc::core {

/// Knobs of the filtering service.
struct RuntimeConfig {
  Policy policy = Policy::kDemandDriven;
  /// Sliding-window depth per (producer copy -> consumer copy set): RR/WRR
  /// cap in-flight (sent but not yet dequeued) buffers; DD caps
  /// unacknowledged buffers.
  int window = 4;
  std::uint64_t header_bytes = 64;  ///< per-buffer message envelope
  std::uint64_t ack_bytes = 64;     ///< DD acknowledgment message size
  std::uint64_t eow_bytes = 64;     ///< end-of-work marker message size
  /// Buffer size the runtime prefers when a stream's [min,max] allows it.
  std::size_t default_buffer_bytes = 64 * 1024;
  std::uint64_t rng_seed = 42;
  /// Livelock guard: a UOW firing more events than this throws.
  std::uint64_t max_events_per_uow = 2'000'000'000ULL;

  // ---- memory governor (ROADMAP item 3) ------------------------------------
  /// Per-host byte budget for queued stream buffers. 0 reproduces the legacy
  /// fixed-window behavior exactly. Nonzero switches exec::Engine and
  /// net::DistributedEngine into governed mode: every copy-set queue keeps a
  /// floor of `window` slots and grows elastically into the budget; overflow
  /// spills to disk instead of stalling the producer, and is re-admitted in
  /// FIFO order so outputs stay bit-identical to the fixed-window baseline.
  /// The simulator ignores the budget (virtual memory residency is not
  /// modeled) and remains the fixed-window reference behavior.
  std::size_t memory_budget_bytes = 0;
  /// Directory for spill files; empty resolves $TMPDIR, falling back to
  /// /tmp (io::temp_root).
  std::string spill_dir;

  // ---- fault tolerance -----------------------------------------------------
  /// kNone reproduces the seed behavior exactly (no retention, no timers —
  /// and no survival of faults). kMembership / kAckTimeout enable graceful
  /// degradation: producers retain dispatched buffers until the consumer
  /// takes responsibility for them (dequeue for RR/WRR, ack for DD) and
  /// retransmit them to surviving copy sets when a copy set dies.
  FailureDetection detection = FailureDetection::kNone;
  /// kAckTimeout only: base no-ack-progress timeout before a copy set is
  /// suspected. Each consecutive silent timeout multiplies the next one by
  /// `ack_timeout_backoff` (capped at `ack_timeout_max`); after
  /// `ack_timeout_strikes` consecutive silent timeouts the copy set is
  /// declared dead and fenced.
  sim::SimTime ack_timeout = 0.05;
  double ack_timeout_backoff = 2.0;
  sim::SimTime ack_timeout_max = 1.0;
  int ack_timeout_strikes = 3;
};

/// Validates the engine-agnostic knobs of `config`: positive window, nonzero
/// buffer size, consistent ack-timeout parameters. Throws
/// std::invalid_argument with a field-specific message on violation. Both
/// execution engines (the simulator Runtime and the native exec::Engine) call
/// this before instantiating anything, so a bad config fails loudly instead
/// of deadlocking or dividing by zero mid-UOW.
void validate(const RuntimeConfig& config);

/// The filtering service: instantiates a filter graph onto a simulated
/// topology according to a Placement, runs units of work, and collects
/// metrics.
///
/// Execution model: each transparent copy is an actor. The runtime delivers
/// one buffer at a time to a copy; the copy's real computation runs
/// immediately and its declared cost is retired on the host's
/// processor-sharing CPU in virtual time. Output buffers release when the
/// compute completes and flow through bounded per-target windows
/// (backpressure); the writer policy picks the destination copy set per
/// buffer. End-of-work markers propagate per producer copy; a consumer copy
/// runs process_eow() after every producer copy's marker arrived and the
/// shared queues drained.
class Runtime {
 public:
  Runtime(sim::Topology& topo, const Graph& graph, const Placement& placement,
          RuntimeConfig config = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Runs one unit of work to completion. Fresh filter objects are created
  /// per UOW (init / process / finalize cycle). Returns the UOW makespan in
  /// virtual seconds.
  sim::SimTime run_uow();

  /// Like run_uow(), but reports what happened: whether the UOW ran clean,
  /// completed in degraded mode (failovers, but every filter kept at least
  /// one live copy), or lost a filter entirely (partial output). With fault
  /// tolerance enabled the UOW never hangs on a crash — it always returns a
  /// structured outcome.
  UowOutcome run_uow_outcome();

  /// Cumulative metrics across all UOWs run so far.
  [[nodiscard]] const Metrics& metrics() const { return metrics_; }
  void reset_metrics();

  /// Optional event trace (disabled by default): records `dispatch`,
  /// `deliver`, `consume`, `stall`, `eow`, and `finish` events with filter /
  /// copy / host detail. Enable via `trace().enable()` before run_uow().
  [[nodiscard]] sim::Trace& trace() { return trace_; }

  /// Attaches a cross-engine observability session (nullptr detaches). Each
  /// transparent copy gets a "sim:<filter>#<copy>@h<host>" track carrying
  /// init/compute spans, consume / eow / finish / policy.pick instants and
  /// DD ack events — all stamped in VIRTUAL seconds, so a simulated run
  /// renders on the same Perfetto timeline as a native one (obs maps both
  /// onto Chrome trace time). The session must outlive every run_uow() call;
  /// detached (the default), each emit site costs one pointer null check.
  void set_obs(obs::TraceSession* session) { obs_ = session; }
  [[nodiscard]] obs::TraceSession* obs() const { return obs_; }

  [[nodiscard]] const RuntimeConfig& config() const { return config_; }
  [[nodiscard]] int total_copies(int filter) const;
  [[nodiscard]] sim::Topology& topology() { return topo_; }

  // Implementation types, public only so that helper structs in the
  // translation unit can reference them; not part of the stable API.
  struct Instance;
  struct CopySet;
  struct StreamRt;
  struct ContextImpl;
  struct Delivery;

 private:
  void build_uow();
  void teardown_uow();
  void start_instance(Instance& inst);
  void on_init_done(Instance& inst);
  void source_step(Instance& inst);
  void run_source_io_then_compute(Instance& inst);
  void submit_compute(Instance& inst);
  void try_consume(Instance& inst);
  void begin_eow(Instance& inst);
  void on_compute_done(Instance& inst);
  void drain(Instance& inst);
  bool dispatch_one(Instance& inst);
  void deliver(CopySet& cset, Delivery d);
  void on_eow_marker(CopySet& cset, int in_port);
  void wake_copies(CopySet& cset);
  void finish_instance(Instance& inst);
  void on_window_release(Instance& producer, int out_port, int target);
  void on_ack(Instance& producer, int out_port, int target);
  [[nodiscard]] int pick_target(Instance& inst, int out_port, int key = -1);

  // ---- fault handling ------------------------------------------------------
  [[nodiscard]] bool fault_tolerant() const {
    return config_.detection != FailureDetection::kNone;
  }
  void on_host_failed(int host);
  void on_host_partitioned(int host, bool partitioned);
  /// Declares a copy set dead: fences its copies, drops its queues, reclaims
  /// every producer's outstanding buffers to it and retransmits them.
  void fail_copyset(CopySet& cset);
  /// Removes one copy from the UOW (crash or fencing): cancels its timers,
  /// drops its undelivered outputs, settles its end-of-work obligations.
  void kill_instance(Instance& inst);
  void reclaim_outstanding(Instance& inst, int out_port, int target);
  void arm_ack_timer(Instance& inst, int out_port, int target);
  void on_ack_timeout(Instance& inst, int out_port, int target,
                      std::uint64_t acks_snapshot);
  void cancel_ack_timers(Instance& inst);
  [[nodiscard]] bool has_outstanding(const Instance& inst) const;
  void kick_dispatch(Instance& inst);

  sim::Topology& topo_;
  const Graph& graph_;
  const Placement& placement_;
  RuntimeConfig config_;
  std::vector<std::size_t> buffer_bytes_;  ///< negotiated, per stream

  // Live only between build_uow() and teardown_uow().
  std::vector<std::unique_ptr<Instance>> instances_;
  std::vector<std::unique_ptr<CopySet>> copysets_;
  std::vector<std::unique_ptr<StreamRt>> stream_rt_;
  int remaining_instances_ = 0;
  sim::SimTime uow_done_at_ = 0.0;
  int uow_index_ = 0;
  bool in_uow_ = false;
  std::vector<int> live_copies_;   ///< per filter, current UOW
  std::vector<int> dead_filters_;  ///< filters that lost every copy, this UOW

  sim::Topology::ListenerId failure_listener_ = 0;
  sim::Topology::ListenerId partition_listener_ = 0;

  Metrics metrics_;
  sim::Rng base_rng_;
  sim::Trace trace_;
  obs::TraceSession* obs_ = nullptr;

  void emit_trace(const char* tag, const Instance& inst, const std::string& detail);
  /// Lazily creates the instance's obs track; nullptr when no session is
  /// attached.
  obs::Track* obs_track(Instance& inst);
};

}  // namespace dc::core
