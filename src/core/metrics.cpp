#include "core/metrics.hpp"

#include "obs/metrics.hpp"

namespace dc::core {

void publish(const Metrics& m, obs::MetricsRegistry& reg,
             const std::string& prefix) {
  reg.set(prefix + ".makespan", m.makespan);
  reg.set(prefix + ".acks_total", m.acks_total);
  reg.set(prefix + ".ack_bytes_total", m.ack_bytes_total);
  reg.set(prefix + ".instances", static_cast<std::int64_t>(m.instances.size()));

  std::uint64_t buffers_in = 0, buffers_out = 0;
  std::uint64_t bytes_in = 0, bytes_out = 0;
  std::uint64_t disk_bytes = 0, acks_sent = 0;
  double work_ops = 0.0, busy = 0.0, stall = 0.0;
  for (const auto& i : m.instances) {
    buffers_in += i.buffers_in;
    buffers_out += i.buffers_out;
    bytes_in += i.bytes_in;
    bytes_out += i.bytes_out;
    disk_bytes += i.disk_bytes;
    acks_sent += i.acks_sent;
    work_ops += i.work_ops;
    busy += i.busy_time;
    stall += i.stall_time;
  }
  reg.set(prefix + ".buffers_in", buffers_in);
  reg.set(prefix + ".buffers_out", buffers_out);
  reg.set(prefix + ".bytes_in", bytes_in);
  reg.set(prefix + ".bytes_out", bytes_out);
  reg.set(prefix + ".disk_bytes", disk_bytes);
  reg.set(prefix + ".acks_sent", acks_sent);
  reg.set(prefix + ".work_ops", work_ops);
  reg.set(prefix + ".busy_time", busy);
  reg.set(prefix + ".stall_time", stall);

  for (const auto& s : m.streams) {
    const std::string base = prefix + ".stream." + s.name;
    reg.set(base + ".buffers", s.buffers);
    reg.set(base + ".payload_bytes", s.payload_bytes);
    reg.set(base + ".message_bytes", s.message_bytes);
  }

  const FaultMetrics& f = m.faults;
  reg.set(prefix + ".faults.hosts_failed", f.hosts_failed);
  reg.set(prefix + ".faults.failovers", f.failovers);
  reg.set(prefix + ".faults.retransmits", f.retransmits);
  reg.set(prefix + ".faults.buffers_lost", f.buffers_lost);
  reg.set(prefix + ".faults.buffers_duplicated", f.buffers_duplicated);
  reg.set(prefix + ".faults.recovery_latency_total", f.recovery_latency_total);
  reg.set(prefix + ".faults.recovery_latency_max", f.recovery_latency_max);
}

}  // namespace dc::core
