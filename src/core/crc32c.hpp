#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace dc::core {

/// CRC32C (Castagnoli, reflected polynomial 0x82F63B78) — the payload-path
/// checksum of the wire protocol (net/wire.hpp, "DCN2") and the on-disk
/// chunk format (io/format.hpp, version 2). Replaces FNV-1a on every
/// per-byte hot path: the x86 SSE4.2 CRC32 instruction digests 8 bytes per
/// cycle-ish, and the polynomial's error-detection properties are what TCP
/// offload engines and iSCSI standardized on.
///
/// `crc32c()` dispatches at runtime: the first call probes the CPU (via
/// __builtin_cpu_supports) and caches a function pointer to the hardware
/// path when SSE4.2 is present, else to the software slicing-by-8 table
/// fallback. Both backends produce identical digests for identical input —
/// test_crc32c sweeps random lengths and alignments to prove it — so a
/// file written on a machine with the instruction verifies on one without.
///
/// Chaining: `seed` is a previously returned digest (0 for a fresh one);
/// crc32c(b, crc32c(a)) == crc32c(a ++ b).
[[nodiscard]] std::uint32_t crc32c(std::span<const std::byte> bytes,
                                   std::uint32_t seed = 0);

/// Software slicing-by-8 backend; always available.
[[nodiscard]] std::uint32_t crc32c_sw(std::span<const std::byte> bytes,
                                      std::uint32_t seed = 0);

/// True when the running CPU exposes the SSE4.2 CRC32 instruction.
[[nodiscard]] bool crc32c_hw_available();

/// Hardware backend. Callers must check crc32c_hw_available() first; on
/// non-x86 builds this falls through to the software path.
[[nodiscard]] std::uint32_t crc32c_hw(std::span<const std::byte> bytes,
                                      std::uint32_t seed = 0);

/// "sse4.2" or "software" — which backend crc32c() dispatches to.
[[nodiscard]] const char* crc32c_backend();

}  // namespace dc::core
