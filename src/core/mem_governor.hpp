#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace dc::obs {
class MetricsRegistry;
}

namespace dc::core {

class BufferArena;

/// Configuration of one per-host MemoryGovernor.
struct GovernorConfig {
  /// Byte budget for all in-memory queued stream buffers on this host.
  /// Elastic admissions stop when total queued bytes would exceed it; floor
  /// admissions (the fixed `window` slots every queue is entitled to) are
  /// exempt, so the budget should be sized at or above the floor reservation
  /// (stats().floor_reserved_bytes) for the high-water bound to be the
  /// configured number.
  std::size_t budget_bytes = 0;
  /// Where spill files are created. Empty = resolve $TMPDIR, fall back to
  /// /tmp (io::temp_root — the same resolution the distributed rank harness
  /// uses). The governor itself never touches the filesystem; engines read
  /// this when constructing their per-channel io::SpillFile.
  std::string spill_dir;
};

/// Point-in-time counters of one MemoryGovernor (all cumulative across UOWs
/// except high_water_bytes, which is a running maximum, and the config
/// echoes).
struct GovernorStats {
  std::uint64_t grants = 0;     ///< elastic admissions beyond a queue's floor
  std::uint64_t denials = 0;    ///< elastic requests refused (caller spills)
  std::uint64_t reclaims = 0;   ///< elastic bytes returned (consumer caught up)
  std::uint64_t spilled_buffers = 0;
  std::uint64_t spilled_bytes = 0;
  std::uint64_t readmitted_buffers = 0;
  std::uint64_t readmitted_bytes = 0;
  /// Max total in-memory queued bytes ever observed. With budget_bytes >=
  /// floor_reserved_bytes this never exceeds budget_bytes (the property the
  /// budget-conservation tests assert over 20 seeds).
  std::uint64_t high_water_bytes = 0;
  std::uint64_t budget_bytes = 0;
  /// PEAK sum over registered queues of floor_slots * slot_bytes: the memory
  /// the legacy fixed-window semantics were always entitled to. A running
  /// maximum (not the current sum) so it survives UOW teardown, which
  /// unregisters every queue.
  std::uint64_t floor_reserved_bytes = 0;
  std::uint64_t queues_registered = 0;  ///< cumulative register_queue calls

  GovernorStats& operator+=(const GovernorStats& o) {
    grants += o.grants;
    denials += o.denials;
    reclaims += o.reclaims;
    spilled_buffers += o.spilled_buffers;
    spilled_bytes += o.spilled_bytes;
    readmitted_buffers += o.readmitted_buffers;
    readmitted_bytes += o.readmitted_bytes;
    high_water_bytes = high_water_bytes > o.high_water_bytes
                           ? high_water_bytes
                           : o.high_water_bytes;
    budget_bytes = budget_bytes > o.budget_bytes ? budget_bytes : o.budget_bytes;
    floor_reserved_bytes += o.floor_reserved_bytes;
    queues_registered += o.queues_registered;
    return *this;
  }
};

/// Per-host memory budget divided elastically across copy-set queues — the
/// TPIE-style memory manager of ROADMAP item 3. Every governed queue keeps a
/// fixed floor of `window` slots (the legacy fixed-window semantics are a
/// strict lower bound: a floor admission NEVER fails), and beyond the floor
/// requests elastic grants from the shared budget:
///
///   - hot queues grow: an elastic request is granted while total queued
///     bytes stay within the budget AND the queue's elastic share stays
///     within its demand-proportional cap (surplus * demand_i / sum demand,
///     never below one slot, so a lone hot queue can take the whole surplus
///     and any queue can always hold at least one elastic slot when the
///     budget has room);
///   - cold queues shrink: every release of an elastic byte is a reclaim —
///     the surplus returns to the pool the moment a consumer catches up;
///   - denial means spill, not blocking: the caller (exec::PortChannel)
///     transparently spills the overflow buffer to disk and re-admits it in
///     FIFO order, so a producer never stalls on an idle-RAM host.
///
/// Demand is the cumulative count of a queue's elastic requests (granted or
/// not); counts are halved across the board when the total grows large, so
/// the ratios — and therefore the caps — track recent behavior. All methods
/// are thread-safe behind one mutex; callers (channels) already hold their
/// own locks, and the lock order channel -> governor is acyclic because the
/// governor never calls out.
class MemoryGovernor {
 public:
  explicit MemoryGovernor(GovernorConfig cfg = {});
  ~MemoryGovernor();

  MemoryGovernor(const MemoryGovernor&) = delete;
  MemoryGovernor& operator=(const MemoryGovernor&) = delete;

  /// Registers one governed queue; `floor_slots * slot_bytes` is reserved
  /// (floor admissions always succeed). Returns the queue id.
  int register_queue(std::size_t floor_slots, std::size_t slot_bytes);

  /// Releases the queue's reservation and whatever it still occupies.
  void unregister_queue(int id);

  /// One item of `bytes` wants to enter queue `id` in memory.
  /// `within_floor` items are always admitted (and charged); elastic items
  /// are admitted while budget and demand-proportional cap allow. Returns
  /// false when the caller must spill instead.
  [[nodiscard]] bool try_admit(int id, std::size_t bytes, bool within_floor);

  /// The item left memory (popped by the consumer). `was_elastic` must echo
  /// what try_admit decided; elastic releases count as reclaims.
  void release(int id, std::size_t bytes, bool was_elastic);

  /// Books one spilled / re-admitted buffer (the channel calls these around
  /// its evict / restore hooks).
  void note_spill(std::size_t bytes);
  void note_readmit(std::size_t bytes);

  /// Applies budget-derived retention caps to `arena` (satellite: the
  /// arena's freelist caps are constructor parameters now; a governed host
  /// bounds retained slabs at min(default cap, budget)). The previous caps
  /// are restored when the governor is destroyed.
  void govern(BufferArena& arena);

  [[nodiscard]] GovernorStats stats() const;
  [[nodiscard]] const GovernorConfig& config() const { return cfg_; }

 private:
  struct Queue {
    std::size_t floor_bytes = 0;    ///< floor_slots * slot_bytes reservation
    std::size_t slot_bytes = 0;
    std::size_t mem_bytes = 0;      ///< total in-memory bytes (floor+elastic)
    std::size_t elastic_bytes = 0;  ///< the beyond-floor portion
    std::size_t floor_used = 0;     ///< the within-floor portion of mem_bytes
    std::uint64_t demand = 0;       ///< cumulative elastic requests
  };

  void charge_locked(Queue& q, std::size_t bytes, bool elastic);

  GovernorConfig cfg_;
  mutable std::mutex mu_;
  std::map<int, Queue> queues_;
  int next_id_ = 0;
  std::size_t used_bytes_ = 0;            ///< sum of queues' mem_bytes
  std::size_t floor_reserved_ = 0;        ///< sum of queues' floor_bytes
  std::size_t floor_used_ = 0;            ///< sum of queues' floor_used
  std::uint64_t total_demand_ = 0;
  GovernorStats stats_;
  BufferArena* governed_arena_ = nullptr;
};

/// Publishes governor counters into the unified registry under
/// `<prefix>.` dotted names (governor.grants, governor.spilled_bytes, ...),
/// the same bridge shape as core::publish / exec::publish / io::publish.
void publish(const GovernorStats& s, obs::MetricsRegistry& reg,
             const std::string& prefix = "governor");

}  // namespace dc::core
