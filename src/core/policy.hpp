#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace dc::core {

/// Buffer-distribution ("writer") policies between copy sets on different
/// hosts (paper Section 2):
///
///  - RoundRobin: cyclic over hosts that run copies of the consumer.
///  - WeightedRoundRobin: cyclic over hosts, each host appearing once per
///    consumer copy it runs.
///  - DemandDriven: send to the consumer host with the fewest
///    unacknowledged buffers; consumers acknowledge a buffer when they start
///    processing it; ties prefer co-located copies. Acks are real messages
///    and cost network time.
///  - TileOwner: content-addressed — each buffer carries a route key (its
///    tile's base-owner target index, see comp::TileMap) and goes to the
///    first live target in the probe sequence key, key+1, ... mod n. With no
///    failures this is exactly the key'd target; when targets die the probe
///    rotates deterministically, so every producer independently agrees on
///    the new owner. Flow control is RR-like (in_flight / window, no acks);
///    keyless buffers (key < 0) fall back to plain round-robin.
enum class Policy {
  kRoundRobin,
  kWeightedRoundRobin,
  kDemandDriven,
  kTileOwner,
};

[[nodiscard]] inline std::string_view to_string(Policy p) {
  switch (p) {
    case Policy::kRoundRobin: return "RR";
    case Policy::kWeightedRoundRobin: return "WRR";
    case Policy::kDemandDriven: return "DD";
    case Policy::kTileOwner: return "TILE";
  }
  return "?";
}

[[nodiscard]] inline Policy parse_policy(std::string_view s) {
  if (s == "RR" || s == "rr") return Policy::kRoundRobin;
  if (s == "WRR" || s == "wrr") return Policy::kWeightedRoundRobin;
  if (s == "DD" || s == "dd") return Policy::kDemandDriven;
  if (s == "TILE" || s == "tile") return Policy::kTileOwner;
  throw std::invalid_argument("unknown policy: " + std::string(s));
}

/// How the runtime learns that a consumer copy set is gone, enabling
/// failover (retransmission of in-flight buffers to surviving copy sets):
///
///  - None: the seed behavior — faults are not tolerated; a crash mid-UOW
///    deadlocks the pipeline. Zero overhead on the data path.
///  - Membership: a cluster membership service reports fail-stop crashes and
///    partitions at the instant they happen (works for every policy; the
///    only option for RR/WRR, which have no acknowledgment traffic to time
///    out). Detection latency is zero.
///  - AckTimeout: end-to-end detection for the demand-driven policy — a
///    producer that sees no acknowledgment progress from a copy set within
///    the (exponentially backed-off, capped) timeout declares it dead and
///    fails over. No oracle: unreachable-but-alive hosts (partitions) are
///    fenced exactly like crashed ones. Requires Policy::kDemandDriven.
enum class FailureDetection {
  kNone,
  kMembership,
  kAckTimeout,
};

[[nodiscard]] inline std::string_view to_string(FailureDetection d) {
  switch (d) {
    case FailureDetection::kNone: return "none";
    case FailureDetection::kMembership: return "membership";
    case FailureDetection::kAckTimeout: return "ack-timeout";
  }
  return "?";
}

}  // namespace dc::core
