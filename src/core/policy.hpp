#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace dc::core {

/// Buffer-distribution ("writer") policies between copy sets on different
/// hosts (paper Section 2):
///
///  - RoundRobin: cyclic over hosts that run copies of the consumer.
///  - WeightedRoundRobin: cyclic over hosts, each host appearing once per
///    consumer copy it runs.
///  - DemandDriven: send to the consumer host with the fewest
///    unacknowledged buffers; consumers acknowledge a buffer when they start
///    processing it; ties prefer co-located copies. Acks are real messages
///    and cost network time.
enum class Policy {
  kRoundRobin,
  kWeightedRoundRobin,
  kDemandDriven,
};

[[nodiscard]] inline std::string_view to_string(Policy p) {
  switch (p) {
    case Policy::kRoundRobin: return "RR";
    case Policy::kWeightedRoundRobin: return "WRR";
    case Policy::kDemandDriven: return "DD";
  }
  return "?";
}

[[nodiscard]] inline Policy parse_policy(std::string_view s) {
  if (s == "RR" || s == "rr") return Policy::kRoundRobin;
  if (s == "WRR" || s == "wrr") return Policy::kWeightedRoundRobin;
  if (s == "DD" || s == "dd") return Policy::kDemandDriven;
  throw std::invalid_argument("unknown policy: " + std::string(s));
}

}  // namespace dc::core
