#include "core/graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace dc::core {

int Graph::add_filter(std::string name, FilterFactory factory, bool is_source) {
  FilterSpec spec;
  spec.name = std::move(name);
  spec.factory = std::move(factory);
  spec.is_source = is_source;
  filters_.push_back(std::move(spec));
  return static_cast<int>(filters_.size()) - 1;
}

int Graph::connect(int from_filter, int from_port, int to_filter, int to_port,
                   std::size_t min_buffer_bytes, std::size_t max_buffer_bytes) {
  if (from_filter < 0 || from_filter >= num_filters() || to_filter < 0 ||
      to_filter >= num_filters()) {
    throw std::invalid_argument("Graph::connect: bad filter id");
  }
  // 256 B floor: every record type in the system fits many times over, so
  // fixed-size buffers can never silently drop a record.
  if (min_buffer_bytes < 256 || min_buffer_bytes > max_buffer_bytes) {
    throw std::invalid_argument("Graph::connect: bad buffer size bounds");
  }
  auto& from = filters_[static_cast<std::size_t>(from_filter)];
  auto& to = filters_[static_cast<std::size_t>(to_filter)];
  if (to.is_source) {
    throw std::invalid_argument("Graph::connect: source filters take no input");
  }
  for (const auto& s : streams_) {
    if (s.to_filter == to_filter && s.to_port == to_port) {
      throw std::invalid_argument("Graph::connect: input port already connected");
    }
  }
  StreamSpec s;
  s.name = from.name + "->" + to.name;
  s.from_filter = from_filter;
  s.from_port = from_port;
  s.to_filter = to_filter;
  s.to_port = to_port;
  s.min_buffer_bytes = min_buffer_bytes;
  s.max_buffer_bytes = max_buffer_bytes;
  streams_.push_back(std::move(s));
  from.num_output_ports = std::max(from.num_output_ports, from_port + 1);
  to.num_input_ports = std::max(to.num_input_ports, to_port + 1);
  return static_cast<int>(streams_.size()) - 1;
}

std::vector<int> Graph::out_streams(int f) const {
  std::vector<int> ids;
  for (int s = 0; s < num_streams(); ++s) {
    if (streams_[static_cast<std::size_t>(s)].from_filter == f) ids.push_back(s);
  }
  std::sort(ids.begin(), ids.end(), [this](int a, int b) {
    return streams_[static_cast<std::size_t>(a)].from_port <
           streams_[static_cast<std::size_t>(b)].from_port;
  });
  return ids;
}

std::vector<int> Graph::in_streams(int f) const {
  std::vector<int> ids;
  for (int s = 0; s < num_streams(); ++s) {
    if (streams_[static_cast<std::size_t>(s)].to_filter == f) ids.push_back(s);
  }
  std::sort(ids.begin(), ids.end(), [this](int a, int b) {
    return streams_[static_cast<std::size_t>(a)].to_port <
           streams_[static_cast<std::size_t>(b)].to_port;
  });
  return ids;
}

void Graph::validate() const {
  for (int f = 0; f < num_filters(); ++f) {
    const auto& spec = filters_[static_cast<std::size_t>(f)];
    if (!spec.factory) {
      throw std::invalid_argument("Graph: filter '" + spec.name + "' has no factory");
    }
    if (spec.is_source && spec.num_input_ports != 0) {
      throw std::invalid_argument("Graph: source '" + spec.name + "' has inputs");
    }
    // Input ports must be densely connected.
    const auto ins = in_streams(f);
    for (std::size_t i = 0; i < ins.size(); ++i) {
      if (streams_[static_cast<std::size_t>(ins[i])].to_port != static_cast<int>(i)) {
        throw std::invalid_argument("Graph: filter '" + spec.name +
                                    "' has a gap in input ports");
      }
    }
    const auto outs = out_streams(f);
    for (std::size_t i = 0; i < outs.size(); ++i) {
      if (streams_[static_cast<std::size_t>(outs[i])].from_port !=
          static_cast<int>(i)) {
        throw std::invalid_argument("Graph: filter '" + spec.name +
                                    "' has a gap in output ports");
      }
    }
  }
  // Cycle check (streams form a DAG in all supported applications).
  std::vector<int> indeg(static_cast<std::size_t>(num_filters()), 0);
  for (const auto& s : streams_) {
    ++indeg[static_cast<std::size_t>(s.to_filter)];
  }
  std::vector<int> queue;
  for (int f = 0; f < num_filters(); ++f) {
    if (indeg[static_cast<std::size_t>(f)] == 0) queue.push_back(f);
  }
  int visited = 0;
  while (!queue.empty()) {
    const int f = queue.back();
    queue.pop_back();
    ++visited;
    for (const auto& s : streams_) {
      if (s.from_filter == f && --indeg[static_cast<std::size_t>(s.to_filter)] == 0) {
        queue.push_back(s.to_filter);
      }
    }
  }
  if (visited != num_filters()) {
    throw std::invalid_argument("Graph: stream graph contains a cycle");
  }
}

}  // namespace dc::core
