#include "core/mem_governor.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/arena.hpp"
#include "obs/metrics.hpp"

namespace dc::core {

namespace {

/// Demand counters are halved across the board once the total passes this,
/// so the proportional caps track recent hotness instead of all of history.
constexpr std::uint64_t kDemandDecayThreshold = 1u << 20;

}  // namespace

MemoryGovernor::MemoryGovernor(GovernorConfig cfg) : cfg_(std::move(cfg)) {
  stats_.budget_bytes = cfg_.budget_bytes;
}

MemoryGovernor::~MemoryGovernor() {
  if (governed_arena_ != nullptr) {
    // Restore the defaults we displaced in govern(); the arena is typically
    // the process-wide global, so leaving tightened caps behind would bleed
    // into unrelated runs (and tests) sharing the process.
    governed_arena_->set_retention(ArenaOptions{});
  }
}

int MemoryGovernor::register_queue(std::size_t floor_slots,
                                   std::size_t slot_bytes) {
  std::lock_guard<std::mutex> lk(mu_);
  const int id = next_id_++;
  Queue q;
  q.floor_bytes = floor_slots * slot_bytes;
  q.slot_bytes = slot_bytes;
  queues_.emplace(id, q);
  floor_reserved_ += q.floor_bytes;
  stats_.floor_reserved_bytes =
      std::max<std::uint64_t>(stats_.floor_reserved_bytes, floor_reserved_);
  ++stats_.queues_registered;
  return id;
}

void MemoryGovernor::unregister_queue(int id) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = queues_.find(id);
  if (it == queues_.end()) return;
  Queue& q = it->second;
  used_bytes_ -= q.mem_bytes;
  floor_reserved_ -= q.floor_bytes;
  floor_used_ -= std::min(floor_used_, q.floor_used);
  total_demand_ -= std::min(total_demand_, q.demand);
  queues_.erase(it);
}

void MemoryGovernor::charge_locked(Queue& q, std::size_t bytes, bool elastic) {
  q.mem_bytes += bytes;
  if (elastic) q.elastic_bytes += bytes;
  used_bytes_ += bytes;
  stats_.high_water_bytes =
      std::max<std::uint64_t>(stats_.high_water_bytes, used_bytes_);
}

bool MemoryGovernor::try_admit(int id, std::size_t bytes, bool within_floor) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = queues_.find(id);
  if (it == queues_.end()) throw std::logic_error("governor: unknown queue id");
  Queue& q = it->second;

  if (within_floor) {
    // The fixed-window entitlement: never denied, charged so the high-water
    // mark reflects true residency. A floor admission converts reserved
    // entitlement into used bytes — the committed total (used + unused
    // reservation) is unchanged, which is what makes the budget a strict
    // high-water bound whenever budget >= floor_reserved_.
    q.floor_used += bytes;
    floor_used_ += bytes;
    charge_locked(q, bytes, /*elastic=*/false);
    return true;
  }

  ++q.demand;
  ++total_demand_;
  if (total_demand_ >= kDemandDecayThreshold) {
    total_demand_ = 0;
    for (auto& [qid, qq] : queues_) {
      qq.demand /= 2;
      total_demand_ += qq.demand;
    }
  }

  // An elastic grant must leave room for every queue to still fill its floor:
  // committed = used bytes + floor entitlement not yet drawn. Checking against
  // committed (not just used) is what makes the budget a strict bound on the
  // high-water mark — a later floor admission never finds the budget already
  // eaten by elastic grants.
  const std::size_t unused_floor =
      floor_reserved_ > floor_used_ ? floor_reserved_ - floor_used_ : 0;
  if (used_bytes_ + unused_floor + bytes > cfg_.budget_bytes) {
    ++stats_.denials;
    return false;
  }

  // Demand-proportional cap over the surplus (budget minus every queue's
  // floor reservation), never below one slot so a queue with room in the
  // budget always holds at least one elastic item.
  const std::size_t surplus =
      cfg_.budget_bytes > floor_reserved_ ? cfg_.budget_bytes - floor_reserved_
                                          : 0;
  std::size_t cap = total_demand_ > 0
                        ? static_cast<std::size_t>(
                              static_cast<double>(surplus) *
                              static_cast<double>(q.demand) /
                              static_cast<double>(total_demand_))
                        : surplus;
  cap = std::max(cap, std::max(q.slot_bytes, bytes));
  if (q.elastic_bytes + bytes > cap) {
    ++stats_.denials;
    return false;
  }

  charge_locked(q, bytes, /*elastic=*/true);
  ++stats_.grants;
  return true;
}

void MemoryGovernor::release(int id, std::size_t bytes, bool was_elastic) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = queues_.find(id);
  if (it == queues_.end()) return;  // queue already unregistered (teardown)
  Queue& q = it->second;
  const std::size_t dec = std::min(bytes, q.mem_bytes);
  q.mem_bytes -= dec;
  used_bytes_ -= dec;
  if (was_elastic) {
    q.elastic_bytes -= std::min(bytes, q.elastic_bytes);
    ++stats_.reclaims;
  } else {
    const std::size_t fdec = std::min(bytes, q.floor_used);
    q.floor_used -= fdec;
    floor_used_ -= fdec;
  }
}

void MemoryGovernor::note_spill(std::size_t bytes) {
  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.spilled_buffers;
  stats_.spilled_bytes += bytes;
}

void MemoryGovernor::note_readmit(std::size_t bytes) {
  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.readmitted_buffers;
  stats_.readmitted_bytes += bytes;
}

void MemoryGovernor::govern(BufferArena& arena) {
  ArenaOptions opts;  // defaults == the historical caps
  opts.max_retained_bytes = std::min(opts.max_retained_bytes,
                                     std::max<std::size_t>(cfg_.budget_bytes,
                                                           1));
  arena.set_retention(opts);
  governed_arena_ = &arena;
}

GovernorStats MemoryGovernor::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void publish(const GovernorStats& s, obs::MetricsRegistry& reg,
             const std::string& prefix) {
  reg.set(prefix + ".grants", s.grants);
  reg.set(prefix + ".denials", s.denials);
  reg.set(prefix + ".reclaims", s.reclaims);
  reg.set(prefix + ".spilled_buffers", s.spilled_buffers);
  reg.set(prefix + ".spilled_bytes", s.spilled_bytes);
  reg.set(prefix + ".readmitted_buffers", s.readmitted_buffers);
  reg.set(prefix + ".readmitted_bytes", s.readmitted_bytes);
  reg.set(prefix + ".high_water_bytes", s.high_water_bytes);
  reg.set(prefix + ".budget_bytes", s.budget_bytes);
  reg.set(prefix + ".floor_reserved_bytes", s.floor_reserved_bytes);
  reg.set(prefix + ".queues_registered", s.queues_registered);
}

}  // namespace dc::core
