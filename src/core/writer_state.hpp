#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "core/policy.hpp"

namespace dc::core {

/// Writer-side flow-control state of one (producer copy, output port): the
/// per-target in-flight / unacknowledged counters and the target-selection
/// logic for all three buffer-distribution policies.
///
/// This is the single, engine-agnostic implementation of RR / WRR / DD. The
/// discrete-event simulator runtime (core::Runtime) and the native threaded
/// engine (exec::Engine) both drive this state machine; each supplies its own
/// notion of dead targets and co-location through the `dead` / `local`
/// predicates, and its own synchronization around the calls (the simulator is
/// single-threaded; the native engine serializes access per producer copy).
///
/// Window semantics (paper Section 2): RR / WRR cap `in_flight` (sent but not
/// yet dequeued) buffers per target; DD caps `unacked` buffers and sends each
/// new buffer to the least-loaded target, ties preferring co-located copies.
struct WriterState {
  std::vector<int> in_flight;  ///< per target: sent, not yet dequeued
  std::vector<int> unacked;    ///< per target: sent, not yet acknowledged (DD)
  int rr_next = 0;             ///< RR: next target; WRR: next wrr_order slot

  void reset(std::size_t num_targets) {
    in_flight.assign(num_targets, 0);
    unacked.assign(num_targets, 0);
    rr_next = 0;
  }

  [[nodiscard]] int num_targets() const {
    return static_cast<int>(in_flight.size());
  }

  void on_dispatch(int target) {
    ++in_flight[st(target)];
    ++unacked[st(target)];
  }

  /// The consumer dequeued one buffer: the flow-control slot frees.
  void on_dequeue(int target) {
    assert(in_flight[st(target)] > 0);
    --in_flight[st(target)];
  }

  /// A DD acknowledgment arrived for `target`.
  void on_ack(int target) {
    assert(unacked[st(target)] > 0);
    --unacked[st(target)];
  }

  /// Picks the destination copy set for the next buffer, or -1 to stall
  /// until a window slot frees.
  ///
  ///  - RoundRobin: cyclic over targets, rotating past dead ones; stalls when
  ///    the first live candidate's window is full (skipping a merely-full
  ///    target would break the cyclic order).
  ///  - WeightedRoundRobin: cyclic over `wrr_order` (one slot per consumer
  ///    copy), same stall rule.
  ///  - DemandDriven: the live target with the fewest unacknowledged buffers
  ///    whose window has room; ties prefer co-located targets.
  ///  - TileOwner: the first live target in the probe sequence
  ///    key, key+1, ... mod n; stalls when that target's window is full (a
  ///    full live owner must never be skipped — the destination is part of
  ///    the buffer's identity). Buffers without a key (key < 0) distribute
  ///    round-robin.
  ///
  /// `pick` mutates `rr_next` only on success, so an engine may re-evaluate
  /// it after every window release until it yields a target.
  template <typename DeadFn, typename LocalFn>
  [[nodiscard]] int pick(Policy policy, int window,
                         const std::vector<int>& wrr_order, DeadFn&& dead,
                         LocalFn&& local, int key = -1) {
    const int n = num_targets();
    assert(n > 0);
    switch (policy) {
      case Policy::kRoundRobin: {
        for (int i = 0; i < n; ++i) {
          const int t = (rr_next + i) % n;
          if (dead(t)) continue;
          if (in_flight[st(t)] >= window) return -1;
          rr_next = (t + 1) % n;
          return t;
        }
        return -1;  // every target dead
      }
      case Policy::kWeightedRoundRobin: {
        const int m = static_cast<int>(wrr_order.size());
        for (int i = 0; i < m; ++i) {
          const int slot = (rr_next + i) % m;
          const int t = wrr_order[st(slot)];
          if (dead(t)) continue;
          if (in_flight[st(t)] >= window) return -1;
          rr_next = (slot + 1) % m;
          return t;
        }
        return -1;
      }
      case Policy::kDemandDriven: {
        int best = -1;
        bool best_local = false;
        for (int t = 0; t < n; ++t) {
          if (dead(t)) continue;
          if (unacked[st(t)] >= window) continue;
          const bool loc = local(t);
          if (best < 0 || unacked[st(t)] < unacked[st(best)] ||
              (unacked[st(t)] == unacked[st(best)] && loc && !best_local)) {
            best = t;
            best_local = loc;
          }
        }
        return best;
      }
      case Policy::kTileOwner: {
        if (key < 0) {
          // Keyless traffic (control records, non-fragment streams) keeps
          // the RR rotation so it spreads without disturbing keyed routing.
          for (int i = 0; i < n; ++i) {
            const int t = (rr_next + i) % n;
            if (dead(t)) continue;
            if (in_flight[st(t)] >= window) return -1;
            rr_next = (t + 1) % n;
            return t;
          }
          return -1;
        }
        for (int i = 0; i < n; ++i) {
          const int t = (key + i) % n;
          if (dead(t)) continue;
          if (in_flight[st(t)] >= window) return -1;  // stall, never re-route
          return t;
        }
        return -1;  // every target dead
      }
    }
    return -1;
  }

 private:
  static std::size_t st(int t) { return static_cast<std::size_t>(t); }
};

}  // namespace dc::core
