#pragma once

#include <cstdint>
#include <type_traits>

namespace dc::core {

/// Engine-agnostic identity of one stream buffer in flight: which logical
/// stream it travels on, which producer copy dispatched it, which consumer
/// copy set it is addressed to, and which unit of work it belongs to.
///
/// This is the serializable "buffer header" the distributed transport puts
/// on the wire (dc::net frames embed one verbatim), and exactly the tuple
/// the in-process engines carry in their Delivery structs — the receiving
/// process needs nothing else to route the payload into the right
/// exec::PortChannel and to return CREDIT / DD-ACK messages to the right
/// core::WriterState slot.
///
/// Layout is fixed (little-endian PODs, no padding) so it can be memcpy'd
/// into a frame; the static_asserts keep that honest.
struct BufferRoute {
  std::int32_t stream = -1;    ///< graph stream id
  std::int32_t producer = -1;  ///< producer copy's global instance index
  std::int32_t target = -1;    ///< index into the stream's target list
  std::uint32_t uow = 0;       ///< unit-of-work index the buffer belongs to

  friend bool operator==(const BufferRoute&, const BufferRoute&) = default;
};

static_assert(std::is_trivially_copyable_v<BufferRoute>);
static_assert(sizeof(BufferRoute) == 16, "wire layout must not drift");

}  // namespace dc::core
