#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace dc::core {

/// Fixed-capacity stream buffer (paper Section 2: "All transfers to and from
/// streams are through fixed size buffers").
///
/// The payload is shared and immutable once written, so passing a Buffer by
/// value is cheap; the runtime moves Buffers between filter copies without
/// copying bytes (virtual network time accounts for the transfer cost).
///
/// Typed helpers (`push` / `records<T>`) let application filters treat a
/// buffer as an array of trivially-copyable records, which is how every
/// filter in the isosurface application uses them.
class Buffer {
 public:
  Buffer() = default;

  explicit Buffer(std::size_t capacity_bytes)
      : storage_(std::make_shared<std::vector<std::byte>>()),
        capacity_(capacity_bytes) {
    storage_->reserve(capacity_bytes);
  }

  /// Wraps existing bytes as a full buffer (capacity == size).
  static Buffer wrap(std::vector<std::byte> bytes) {
    Buffer b;
    b.capacity_ = bytes.size();
    b.storage_ = std::make_shared<std::vector<std::byte>>(std::move(bytes));
    return b;
  }

  /// Adopts externally owned shared storage (an arena slot, a recv block)
  /// without copying. The storage may already hold bytes; capacity covers
  /// at least what is present.
  static Buffer adopt(std::shared_ptr<std::vector<std::byte>> storage,
                      std::size_t capacity_bytes) {
    Buffer b;
    b.capacity_ = capacity_bytes;
    if (storage && storage->size() > b.capacity_) b.capacity_ = storage->size();
    b.storage_ = std::move(storage);
    return b;
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const {
    return storage_ ? storage_->size() : 0;
  }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] std::size_t remaining() const { return capacity_ - size(); }

  [[nodiscard]] std::span<const std::byte> bytes() const {
    if (!storage_) return {};
    return {storage_->data(), storage_->size()};
  }

  /// Appends raw bytes; returns false (and appends nothing) on overflow.
  bool append(std::span<const std::byte> src) {
    if (!storage_ || src.size() > remaining()) return false;
    storage_->insert(storage_->end(), src.begin(), src.end());
    return true;
  }

  /// Appends one trivially-copyable record; false on overflow.
  template <typename T>
  bool push(const T& record) {
    static_assert(std::is_trivially_copyable_v<T>);
    return append(std::as_bytes(std::span<const T, 1>(&record, 1)));
  }

  /// Number of T records that fit in the capacity.
  template <typename T>
  [[nodiscard]] std::size_t record_capacity() const {
    return capacity_ / sizeof(T);
  }

  /// Views the payload as records of T. Requires the payload to be a whole
  /// number of records (it is, when produced exclusively via push<T>).
  template <typename T>
  [[nodiscard]] std::span<const T> records() const {
    static_assert(std::is_trivially_copyable_v<T>);
    if (!storage_ || storage_->empty()) return {};
    assert(storage_->size() % sizeof(T) == 0);
    assert(reinterpret_cast<std::uintptr_t>(storage_->data()) % alignof(T) == 0);
    return {reinterpret_cast<const T*>(storage_->data()),
            storage_->size() / sizeof(T)};
  }

  template <typename T>
  [[nodiscard]] std::size_t record_count() const {
    return size() / sizeof(T);
  }

  /// Content-addressed routing key for Policy::kTileOwner: the base-owner
  /// target index this buffer wants to reach (-1 = unkeyed, distribute by
  /// the fallback rotation). Part of the buffer's value, so retained copies
  /// kept for fault retransmission re-probe to the same deterministic owner.
  /// Never serialized — the key is resolved to a concrete target at dispatch.
  [[nodiscard]] std::int32_t route_key() const { return route_key_; }
  void set_route_key(std::int32_t key) { route_key_ = key; }

 private:
  std::shared_ptr<std::vector<std::byte>> storage_;
  std::size_t capacity_ = 0;
  std::int32_t route_key_ = -1;
};

}  // namespace dc::core
