#pragma once

#include <stdexcept>
#include <vector>

namespace dc::core {

/// Where the transparent copies of each filter run (paper Section 2: the
/// application developer chooses decomposition, placement, and copy counts).
class Placement {
 public:
  struct Entry {
    int host = -1;
    int copies = 1;
  };

  /// Places `copies` transparent copies of `filter` on `host`. May be called
  /// multiple times per filter for different hosts.
  Placement& place(int filter, int host, int copies = 1) {
    if (copies <= 0) throw std::invalid_argument("Placement: copies must be > 0");
    if (host < 0) throw std::invalid_argument("Placement: bad host");
    grow(filter);
    entries_[static_cast<std::size_t>(filter)].push_back(Entry{host, copies});
    return *this;
  }

  /// One copy of `filter` on each host in `hosts`.
  Placement& place_each(int filter, const std::vector<int>& hosts, int copies = 1) {
    for (int h : hosts) place(filter, h, copies);
    return *this;
  }

  [[nodiscard]] const std::vector<Entry>& entries(int filter) const {
    static const std::vector<Entry> kEmpty;
    if (filter < 0 || static_cast<std::size_t>(filter) >= entries_.size()) {
      return kEmpty;
    }
    return entries_[static_cast<std::size_t>(filter)];
  }

  [[nodiscard]] int total_copies(int filter) const {
    int n = 0;
    for (const auto& e : entries(filter)) n += e.copies;
    return n;
  }

  [[nodiscard]] int num_filters_placed() const {
    return static_cast<int>(entries_.size());
  }

 private:
  void grow(int filter) {
    if (filter < 0) throw std::invalid_argument("Placement: bad filter");
    if (static_cast<std::size_t>(filter) >= entries_.size()) {
      entries_.resize(static_cast<std::size_t>(filter) + 1);
    }
  }
  std::vector<std::vector<Entry>> entries_;
};

}  // namespace dc::core
