#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/runtime.hpp"
#include "sim/cluster.hpp"

namespace dc::sort {

/// A record being sorted. Key + payload, 16 bytes — the "low processing
/// requirements" data-movement workload class the paper contrasts with
/// isosurface rendering (cf. River / external sorting in related work).
struct SortRecord {
  std::uint64_t key = 0;
  std::uint64_t payload = 0;
};
static_assert(sizeof(SortRecord) == 16);

/// Parameters of the external-sort demo application.
struct SortWorkload {
  int runs_per_reader = 8;            ///< disk runs each reader copy scans
  std::uint64_t records_per_run = 4096;
  std::uint64_t stored_record_bytes = 64;  ///< on-disk footprint per record
  std::uint64_t seed = 12345;
  double gen_per_record = 40.0;   ///< parse/copy ops per record read
  double sort_per_record = 30.0;  ///< per record per log2(n) compare+swap
  double merge_per_record = 25.0;
};

/// What the merge filter observed; checked by tests and printed by the demo.
struct SortOutcome {
  std::uint64_t count = 0;
  std::uint64_t key_xor = 0;   ///< order-independent checksum
  std::uint64_t key_sum = 0;
  bool sorted = true;
  std::uint64_t min_key = 0;
  std::uint64_t max_key = 0;
};

/// Placement of the three-filter sort pipeline
/// (ReadRecords -> Sort copies -> Merge).
struct SortAppSpec {
  SortWorkload workload;
  std::vector<std::pair<int, int>> reader_hosts;  ///< (host, copies)
  std::vector<std::pair<int, int>> sorter_hosts;  ///< (host, copies)
  int merge_host = 0;
  std::size_t buffer_bytes = 32 * 1024;
};

struct SortRun {
  SortOutcome outcome;
  sim::SimTime makespan = 0.0;
  core::Metrics metrics;
};

/// Builds and runs one unit of work of the external sort on `topo`.
SortRun run_sort_app(sim::Topology& topo, const SortAppSpec& spec,
                     const core::RuntimeConfig& rt_config);

}  // namespace dc::sort
