#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <utility>
#include <vector>

#include "core/runtime.hpp"
#include "sim/cluster.hpp"

namespace dc::io {
class ChunkReader;
}

namespace dc::sort {

/// A record being sorted. Key + payload, 16 bytes — the "low processing
/// requirements" data-movement workload class the paper contrasts with
/// isosurface rendering (cf. River / external sorting in related work).
struct SortRecord {
  std::uint64_t key = 0;
  std::uint64_t payload = 0;
};
static_assert(sizeof(SortRecord) == 16);

/// Parameters of the external-sort demo application.
struct SortWorkload {
  int runs_per_reader = 8;            ///< disk runs each reader copy scans
  std::uint64_t records_per_run = 4096;
  std::uint64_t stored_record_bytes = 64;  ///< on-disk footprint per record
  std::uint64_t seed = 12345;
  double gen_per_record = 40.0;   ///< parse/copy ops per record read
  double sort_per_record = 30.0;  ///< per record per log2(n) compare+swap
  double merge_per_record = 25.0;
};

/// What the merge filter observed; checked by tests and printed by the demo.
struct SortOutcome {
  std::uint64_t count = 0;
  std::uint64_t key_xor = 0;   ///< order-independent checksum
  std::uint64_t key_sum = 0;
  bool sorted = true;
  std::uint64_t min_key = 0;
  std::uint64_t max_key = 0;
};

/// Placement of the three-filter sort pipeline
/// (ReadRecords -> Sort copies -> Merge).
struct SortAppSpec {
  SortWorkload workload;
  std::vector<std::pair<int, int>> reader_hosts;  ///< (host, copies)
  std::vector<std::pair<int, int>> sorter_hosts;  ///< (host, copies)
  int merge_host = 0;
  std::size_t buffer_bytes = 32 * 1024;
  /// When set, the readers stream their runs from an on-disk chunk store
  /// (fully out-of-core) instead of synthesizing records: reader instance r
  /// scans store chunks [r * runs_per_reader, (r+1) * runs_per_reader) at
  /// timestep 0 — the layout write_sort_runs() materializes. The reader is
  /// shared across all copies (it is thread-safe).
  io::ChunkReader* reader = nullptr;
  int prefetch_depth = 2;  ///< readahead window per reader copy
  /// 0 = each SortRun copy accumulates its whole input in memory (legacy).
  /// Nonzero: a copy bounds its working set to this many bytes of records —
  /// when accumulation would exceed it, the block is sorted and spilled to
  /// an io::SpillFile (CRC32C-checked), and end of work k-way merges the
  /// spilled blocks with the in-memory tail through chunked cursors. The
  /// emitted run (and therefore the SortOutcome) is identical either way:
  /// external sorting as a degenerate case of the governed spill path.
  std::size_t sort_memory_budget_bytes = 0;
  std::string spill_dir;  ///< empty resolves $TMPDIR, falls back to /tmp
};

/// What write_sort_runs() put on disk, plus the outcome any correct sort of
/// those records must report (count / key checksums / min / max).
struct MaterializedRuns {
  SortOutcome expected;
  int total_runs = 0;
  std::uint64_t total_bytes = 0;
};

/// Materializes the input of an out-of-core sort under `root`: one store
/// file per run, records generated deterministically from `w.seed` (so the
/// expected outcome is known without sorting). Reader instances are numbered
/// in `reader_hosts` order and each owns `w.runs_per_reader` consecutive run
/// ids; a reader's runs land in its own host's directory, spread over
/// `disks_per_host` disk subdirectories.
MaterializedRuns write_sort_runs(
    const std::filesystem::path& root, const SortWorkload& w,
    const std::vector<std::pair<int, int>>& reader_hosts,
    int disks_per_host = 1);

struct SortRun {
  SortOutcome outcome;
  sim::SimTime makespan = 0.0;
  core::Metrics metrics;
  /// Spill activity summed across the SortRun copies (zero when
  /// sort_memory_budget_bytes == 0 or the budget never overflowed).
  std::uint64_t spilled_blocks = 0;
  std::uint64_t spilled_bytes = 0;
};

/// Builds and runs one unit of work of the external sort on `topo`.
SortRun run_sort_app(sim::Topology& topo, const SortAppSpec& spec,
                     const core::RuntimeConfig& rt_config);

}  // namespace dc::sort
