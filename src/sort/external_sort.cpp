#include "sort/external_sort.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <queue>
#include <stdexcept>

#include "core/crc32c.hpp"
#include "core/filter.hpp"
#include "io/chunk_store.hpp"
#include "io/reader.hpp"
#include "io/spill.hpp"

namespace dc::sort {

namespace {

/// splitmix64: the record-key generator of the materialized runs. Chosen so
/// write_sort_runs() and nothing else defines the dataset — the filters just
/// move bytes.
std::uint64_t next_key(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Source: scans `runs_per_reader` runs from the host-local disk, producing
/// key/payload records. Two modes: synthesized deterministically from
/// ctx.rng() (the stand-in for a stored input file), or — when `reader` is
/// set — streamed from the on-disk chunk store written by write_sort_runs()
/// (genuinely out-of-core).
class ReadRecordsFilter final : public core::SourceFilter {
 public:
  ReadRecordsFilter(SortWorkload w, io::ChunkReader* reader, int prefetch_depth)
      : w_(w), reader_(reader), prefetch_depth_(prefetch_depth) {}

  void init(core::FilterContext& ctx) override {
    run_ = 0;
    if (reader_ == nullptr) return;
    const int base = ctx.instance_index() * w_.runs_per_reader;
    for (int k = 0; k < prefetch_depth_ && k < w_.runs_per_reader; ++k) {
      reader_->prefetch(base + k, /*timestep=*/0);
    }
  }

  bool step(core::FilterContext& ctx) override {
    if (run_ >= w_.runs_per_reader) return false;
    const int global_run = ctx.instance_index() * w_.runs_per_reader + run_;
    ++run_;
    ctx.read_disk(0, w_.records_per_run * w_.stored_record_bytes);
    ctx.charge(w_.gen_per_record * static_cast<double>(w_.records_per_run));
    core::Buffer out = ctx.make_buffer(0);
    if (reader_ != nullptr) {
      double waited = 0.0;
      const auto data = reader_->read(global_run, /*timestep=*/0, &waited);
      ctx.note_io_wait(waited);
      if (data->size() % sizeof(SortRecord) != 0) {
        throw std::runtime_error("sort: run payload is not whole records");
      }
      const std::size_t n = data->size() / sizeof(SortRecord);
      for (std::size_t i = 0; i < n; ++i) {
        SortRecord r;
        std::memcpy(&r, data->data() + i * sizeof(SortRecord), sizeof(r));
        if (!out.push(r)) {
          ctx.write(0, out);
          out = ctx.make_buffer(0);
          out.push(r);
        }
      }
      // Slide the readahead window: one new run per run consumed.
      const int ahead = global_run + prefetch_depth_;
      if (prefetch_depth_ > 0 &&
          ahead < (ctx.instance_index() + 1) * w_.runs_per_reader) {
        reader_->prefetch(ahead, /*timestep=*/0);
      }
    } else {
      auto& rng = ctx.rng();
      for (std::uint64_t i = 0; i < w_.records_per_run; ++i) {
        SortRecord r;
        r.key = rng.next_u64();
        r.payload = (static_cast<std::uint64_t>(ctx.instance_index()) << 32) | i;
        if (!out.push(r)) {
          ctx.write(0, out);
          out = ctx.make_buffer(0);
          out.push(r);
        }
      }
    }
    if (out.size() > 0) ctx.write(0, out);
    return run_ < w_.runs_per_reader;
  }

 private:
  SortWorkload w_;
  io::ChunkReader* reader_;
  int prefetch_depth_;
  int run_ = 0;
};

bool record_less(const SortRecord& a, const SortRecord& b) {
  return a.key < b.key || (a.key == b.key && a.payload < b.payload);
}

/// Spill activity shared by all SortRun copies of one run_sort_app call,
/// reported through SortRun. Atomic: the simulator runs copies in one
/// thread, but the counters are harmless to keep engine-agnostic.
struct SpillTally {
  std::atomic<std::uint64_t> blocks{0};
  std::atomic<std::uint64_t> bytes{0};
};

/// Sequential reader over one spilled sorted block: chunked pread_at with a
/// chained CRC32C — crc32c(b, crc32c(a)) == crc32c(a++b), so the cursor
/// verifies the whole block against the stored record checksum by the time
/// it is exhausted without ever holding more than one chunk in memory.
class SpillCursor {
 public:
  SpillCursor(io::SpillFile& file, std::uint64_t token,
              std::size_t chunk_bytes)
      : file_(file),
        token_(token),
        total_(file.record_bytes(token)),
        // Whole records only: a chunk that ends mid-record would drop the
        // straddling record and desynchronize every later read.
        chunk_bytes_(std::max<std::size_t>(chunk_bytes, sizeof(SortRecord)) /
                     sizeof(SortRecord) * sizeof(SortRecord)) {
    refill();
  }

  [[nodiscard]] bool done() const { return idx_ >= buf_.size() && off_ >= total_; }
  [[nodiscard]] const SortRecord& front() const { return buf_[idx_]; }

  void advance() {
    ++idx_;
    if (idx_ >= buf_.size() && off_ < total_) refill();
    if (done()) {
      if (crc_ != file_.record_crc(token_)) {
        throw std::runtime_error("sort: spilled block failed its checksum");
      }
      file_.discard(token_);
    }
  }

 private:
  void refill() {
    const std::size_t n = std::min(chunk_bytes_, total_ - off_);
    raw_.resize(n);
    file_.pread_at(token_, off_, std::span<std::byte>(raw_));
    crc_ = core::crc32c(std::span<const std::byte>(raw_), crc_);
    buf_.resize(n / sizeof(SortRecord));
    std::memcpy(buf_.data(), raw_.data(), n);
    off_ += n;
    idx_ = 0;
  }

  io::SpillFile& file_;
  std::uint64_t token_;
  std::size_t total_;
  std::size_t chunk_bytes_;
  std::size_t off_ = 0;
  std::uint32_t crc_ = 0;
  std::vector<std::byte> raw_;
  std::vector<SortRecord> buf_;
  std::size_t idx_ = 0;
};

/// Accumulates records, sorts them at end of work, and emits one sorted run.
/// A filter with internal state — the class of applications that forces the
/// trailing combine filter (paper Section 1).
///
/// With a memory budget, accumulation is bounded: overflowing blocks are
/// sorted and spilled (io::SpillFile, CRC32C-checked), and end of work
/// k-way merges the spilled blocks with the in-memory tail. The emitted
/// record sequence is identical to the unbounded sort — the comparator is a
/// total order over (key, payload), so merge output equals sort output.
class SortRunFilter final : public core::Filter {
 public:
  SortRunFilter(SortWorkload w, std::size_t budget_bytes,
                std::string spill_dir, std::shared_ptr<SpillTally> tally)
      : w_(w),
        budget_bytes_(budget_bytes),
        spill_dir_(std::move(spill_dir)),
        tally_(std::move(tally)) {}

  void process_buffer(core::FilterContext& ctx, int /*port*/,
                      const core::Buffer& buf) override {
    const auto records = buf.records<SortRecord>();
    records_.insert(records_.end(), records.begin(), records.end());
    ctx.charge(w_.gen_per_record * 0.25 * static_cast<double>(records.size()));
    if (budget_bytes_ > 0 &&
        records_.size() * sizeof(SortRecord) >= budget_bytes_) {
      spill_block(ctx);
    }
  }

  void process_eow(core::FilterContext& ctx) override {
    std::sort(records_.begin(), records_.end(), record_less);
    const double n = static_cast<double>(records_.size());
    ctx.charge(w_.sort_per_record * n * std::max(1.0, std::log2(n + 1.0)));

    core::Buffer out = ctx.make_buffer(0);
    const auto emit = [&](const SortRecord& r) {
      if (!out.push(r)) {
        ctx.write(0, out);
        out = ctx.make_buffer(0);
        out.push(r);
      }
    };

    if (tokens_.empty()) {
      for (const SortRecord& r : records_) emit(r);
    } else {
      // k-way merge of the spilled blocks and the in-memory tail. Cursor
      // chunks split the remaining budget so the merge respects the same
      // bound the accumulation did.
      const std::size_t chunk =
          std::max<std::size_t>(budget_bytes_ / (tokens_.size() + 1),
                                4 * sizeof(SortRecord));
      std::vector<std::unique_ptr<SpillCursor>> cursors;
      cursors.reserve(tokens_.size());
      for (std::uint64_t t : tokens_) {
        cursors.push_back(std::make_unique<SpillCursor>(*spill_, t, chunk));
      }
      ctx.charge(w_.merge_per_record * n *
                 std::log2(static_cast<double>(tokens_.size() + 2)));
      std::size_t tail = 0;
      for (;;) {
        int best = -1;  // index into cursors, or k == in-memory tail
        const SortRecord* best_rec = nullptr;
        for (std::size_t c = 0; c < cursors.size(); ++c) {
          if (cursors[c]->done()) continue;
          if (best_rec == nullptr || record_less(cursors[c]->front(), *best_rec)) {
            best = static_cast<int>(c);
            best_rec = &cursors[c]->front();
          }
        }
        if (tail < records_.size() &&
            (best_rec == nullptr || record_less(records_[tail], *best_rec))) {
          emit(records_[tail++]);
          continue;
        }
        if (best_rec == nullptr) break;
        emit(*best_rec);
        cursors[static_cast<std::size_t>(best)]->advance();
      }
      tokens_.clear();
    }
    if (out.size() > 0) ctx.write(0, out);
  }

 private:
  void spill_block(core::FilterContext& ctx) {
    std::sort(records_.begin(), records_.end(), record_less);
    const double n = static_cast<double>(records_.size());
    ctx.charge(w_.sort_per_record * n * std::max(1.0, std::log2(n + 1.0)));
    if (spill_ == nullptr) {
      spill_ = std::make_unique<io::SpillFile>(
          std::filesystem::path(spill_dir_));
    }
    const auto bytes = std::as_bytes(std::span<const SortRecord>(records_));
    tokens_.push_back(spill_->append(bytes));
    if (tally_) {
      tally_->blocks.fetch_add(1, std::memory_order_relaxed);
      tally_->bytes.fetch_add(bytes.size(), std::memory_order_relaxed);
    }
    records_.clear();
  }

  SortWorkload w_;
  std::size_t budget_bytes_;
  std::string spill_dir_;
  std::shared_ptr<SpillTally> tally_;
  std::vector<SortRecord> records_;
  std::unique_ptr<io::SpillFile> spill_;
  std::vector<std::uint64_t> tokens_;  ///< spilled sorted blocks, in order
};

/// Combine filter: merges the sorted runs into the final output and records
/// invariants for verification. With k upstream copies the merge work is
/// n * log2(k); the output is identical no matter how many copies ran.
class MergeRunsFilter final : public core::Filter {
 public:
  MergeRunsFilter(SortWorkload w, std::shared_ptr<SortOutcome> out, int k)
      : w_(w), out_(std::move(out)), k_(std::max(2, k)) {}

  void process_buffer(core::FilterContext& ctx, int /*port*/,
                      const core::Buffer& buf) override {
    const auto records = buf.records<SortRecord>();
    all_.insert(all_.end(), records.begin(), records.end());
    ctx.charge(w_.merge_per_record * static_cast<double>(records.size()));
  }

  void process_eow(core::FilterContext& ctx) override {
    ctx.charge(w_.merge_per_record * static_cast<double>(all_.size()) *
               std::log2(static_cast<double>(k_)));
    std::sort(all_.begin(), all_.end(),
              [](const SortRecord& a, const SortRecord& b) {
                return a.key < b.key ||
                       (a.key == b.key && a.payload < b.payload);
              });
    SortOutcome o;
    o.count = all_.size();
    o.sorted = true;
    for (std::size_t i = 0; i < all_.size(); ++i) {
      o.key_xor ^= all_[i].key;
      o.key_sum += all_[i].key;
      if (i > 0 && all_[i - 1].key > all_[i].key) o.sorted = false;
    }
    if (!all_.empty()) {
      o.min_key = all_.front().key;
      o.max_key = all_.back().key;
    }
    *out_ = o;
  }

 private:
  SortWorkload w_;
  std::shared_ptr<SortOutcome> out_;
  int k_;
  std::vector<SortRecord> all_;
};

}  // namespace

MaterializedRuns write_sort_runs(
    const std::filesystem::path& root, const SortWorkload& w,
    const std::vector<std::pair<int, int>>& reader_hosts, int disks_per_host) {
  if (disks_per_host < 1) {
    throw std::invalid_argument("write_sort_runs: disks_per_host must be >= 1");
  }
  io::ChunkStoreWriter writer(root);
  MaterializedRuns out;
  SortOutcome& e = out.expected;
  e.sorted = true;  // what a correct sort of these records must report
  bool first = true;
  std::vector<std::byte> payload(w.records_per_run * sizeof(SortRecord));
  int reader_index = 0;
  for (const auto& [host, copies] : reader_hosts) {
    for (int c = 0; c < copies; ++c, ++reader_index) {
      for (int j = 0; j < w.runs_per_reader; ++j) {
        const int run = reader_index * w.runs_per_reader + j;
        std::uint64_t state =
            w.seed ^ (0xd6e8feb86659fd93ULL * static_cast<std::uint64_t>(run + 1));
        for (std::uint64_t i = 0; i < w.records_per_run; ++i) {
          SortRecord r;
          r.key = next_key(state);
          r.payload = (static_cast<std::uint64_t>(run) << 32) | i;
          std::memcpy(payload.data() + i * sizeof(SortRecord), &r, sizeof(r));
          ++e.count;
          e.key_xor ^= r.key;
          e.key_sum += r.key;
          if (first || r.key < e.min_key) e.min_key = r.key;
          if (first || r.key > e.max_key) e.max_key = r.key;
          first = false;
        }
        writer.put_chunk({host, j % disks_per_host}, /*file_id=*/run,
                         /*chunk=*/run, /*timestep=*/0, payload);
        out.total_bytes += payload.size();
      }
    }
  }
  writer.finish();
  out.total_runs = reader_index * w.runs_per_reader;
  return out;
}

SortRun run_sort_app(sim::Topology& topo, const SortAppSpec& spec,
                     const core::RuntimeConfig& rt_config) {
  core::Graph graph;
  core::Placement placement;
  auto outcome = std::make_shared<SortOutcome>();

  const SortWorkload w = spec.workload;
  int total_sorters = 0;
  for (const auto& [host, copies] : spec.sorter_hosts) {
    (void)host;
    total_sorters += copies;
  }

  io::ChunkReader* chunk_reader = spec.reader;
  const int prefetch_depth = spec.prefetch_depth;
  const int reader =
      graph.add_source("ReadRecords", [w, chunk_reader, prefetch_depth] {
        return std::make_unique<ReadRecordsFilter>(w, chunk_reader,
                                                   prefetch_depth);
      });
  auto tally = std::make_shared<SpillTally>();
  const std::size_t sort_budget = spec.sort_memory_budget_bytes;
  const std::string spill_dir = spec.spill_dir;
  const int sorter =
      graph.add_filter("SortRun", [w, sort_budget, spill_dir, tally] {
        return std::make_unique<SortRunFilter>(w, sort_budget, spill_dir,
                                               tally);
      });
  const int merger = graph.add_filter("MergeRuns", [w, outcome, total_sorters] {
    return std::make_unique<MergeRunsFilter>(w, outcome, total_sorters);
  });
  graph.connect(reader, 0, sorter, 0, spec.buffer_bytes, spec.buffer_bytes);
  graph.connect(sorter, 0, merger, 0, spec.buffer_bytes, spec.buffer_bytes);

  for (const auto& [host, copies] : spec.reader_hosts) {
    placement.place(reader, host, copies);
  }
  for (const auto& [host, copies] : spec.sorter_hosts) {
    placement.place(sorter, host, copies);
  }
  placement.place(merger, spec.merge_host, 1);

  core::Runtime rt(topo, graph, placement, rt_config);
  SortRun run;
  run.makespan = rt.run_uow();
  run.outcome = *outcome;
  run.metrics = rt.metrics();
  run.spilled_blocks = tally->blocks.load(std::memory_order_relaxed);
  run.spilled_bytes = tally->bytes.load(std::memory_order_relaxed);
  return run;
}

}  // namespace dc::sort
