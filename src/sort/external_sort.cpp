#include "sort/external_sort.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "core/filter.hpp"
#include "io/chunk_store.hpp"
#include "io/reader.hpp"

namespace dc::sort {

namespace {

/// splitmix64: the record-key generator of the materialized runs. Chosen so
/// write_sort_runs() and nothing else defines the dataset — the filters just
/// move bytes.
std::uint64_t next_key(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Source: scans `runs_per_reader` runs from the host-local disk, producing
/// key/payload records. Two modes: synthesized deterministically from
/// ctx.rng() (the stand-in for a stored input file), or — when `reader` is
/// set — streamed from the on-disk chunk store written by write_sort_runs()
/// (genuinely out-of-core).
class ReadRecordsFilter final : public core::SourceFilter {
 public:
  ReadRecordsFilter(SortWorkload w, io::ChunkReader* reader, int prefetch_depth)
      : w_(w), reader_(reader), prefetch_depth_(prefetch_depth) {}

  void init(core::FilterContext& ctx) override {
    run_ = 0;
    if (reader_ == nullptr) return;
    const int base = ctx.instance_index() * w_.runs_per_reader;
    for (int k = 0; k < prefetch_depth_ && k < w_.runs_per_reader; ++k) {
      reader_->prefetch(base + k, /*timestep=*/0);
    }
  }

  bool step(core::FilterContext& ctx) override {
    if (run_ >= w_.runs_per_reader) return false;
    const int global_run = ctx.instance_index() * w_.runs_per_reader + run_;
    ++run_;
    ctx.read_disk(0, w_.records_per_run * w_.stored_record_bytes);
    ctx.charge(w_.gen_per_record * static_cast<double>(w_.records_per_run));
    core::Buffer out = ctx.make_buffer(0);
    if (reader_ != nullptr) {
      double waited = 0.0;
      const auto data = reader_->read(global_run, /*timestep=*/0, &waited);
      ctx.note_io_wait(waited);
      if (data->size() % sizeof(SortRecord) != 0) {
        throw std::runtime_error("sort: run payload is not whole records");
      }
      const std::size_t n = data->size() / sizeof(SortRecord);
      for (std::size_t i = 0; i < n; ++i) {
        SortRecord r;
        std::memcpy(&r, data->data() + i * sizeof(SortRecord), sizeof(r));
        if (!out.push(r)) {
          ctx.write(0, out);
          out = ctx.make_buffer(0);
          out.push(r);
        }
      }
      // Slide the readahead window: one new run per run consumed.
      const int ahead = global_run + prefetch_depth_;
      if (prefetch_depth_ > 0 &&
          ahead < (ctx.instance_index() + 1) * w_.runs_per_reader) {
        reader_->prefetch(ahead, /*timestep=*/0);
      }
    } else {
      auto& rng = ctx.rng();
      for (std::uint64_t i = 0; i < w_.records_per_run; ++i) {
        SortRecord r;
        r.key = rng.next_u64();
        r.payload = (static_cast<std::uint64_t>(ctx.instance_index()) << 32) | i;
        if (!out.push(r)) {
          ctx.write(0, out);
          out = ctx.make_buffer(0);
          out.push(r);
        }
      }
    }
    if (out.size() > 0) ctx.write(0, out);
    return run_ < w_.runs_per_reader;
  }

 private:
  SortWorkload w_;
  io::ChunkReader* reader_;
  int prefetch_depth_;
  int run_ = 0;
};

/// Accumulates records, sorts them at end of work, and emits one sorted run.
/// A filter with internal state — the class of applications that forces the
/// trailing combine filter (paper Section 1).
class SortRunFilter final : public core::Filter {
 public:
  explicit SortRunFilter(SortWorkload w) : w_(w) {}

  void process_buffer(core::FilterContext& ctx, int /*port*/,
                      const core::Buffer& buf) override {
    const auto records = buf.records<SortRecord>();
    records_.insert(records_.end(), records.begin(), records.end());
    ctx.charge(w_.gen_per_record * 0.25 * static_cast<double>(records.size()));
  }

  void process_eow(core::FilterContext& ctx) override {
    std::sort(records_.begin(), records_.end(),
              [](const SortRecord& a, const SortRecord& b) {
                return a.key < b.key ||
                       (a.key == b.key && a.payload < b.payload);
              });
    const double n = static_cast<double>(records_.size());
    ctx.charge(w_.sort_per_record * n * std::max(1.0, std::log2(n + 1.0)));
    core::Buffer out = ctx.make_buffer(0);
    for (const SortRecord& r : records_) {
      if (!out.push(r)) {
        ctx.write(0, out);
        out = ctx.make_buffer(0);
        out.push(r);
      }
    }
    if (out.size() > 0) ctx.write(0, out);
  }

 private:
  SortWorkload w_;
  std::vector<SortRecord> records_;
};

/// Combine filter: merges the sorted runs into the final output and records
/// invariants for verification. With k upstream copies the merge work is
/// n * log2(k); the output is identical no matter how many copies ran.
class MergeRunsFilter final : public core::Filter {
 public:
  MergeRunsFilter(SortWorkload w, std::shared_ptr<SortOutcome> out, int k)
      : w_(w), out_(std::move(out)), k_(std::max(2, k)) {}

  void process_buffer(core::FilterContext& ctx, int /*port*/,
                      const core::Buffer& buf) override {
    const auto records = buf.records<SortRecord>();
    all_.insert(all_.end(), records.begin(), records.end());
    ctx.charge(w_.merge_per_record * static_cast<double>(records.size()));
  }

  void process_eow(core::FilterContext& ctx) override {
    ctx.charge(w_.merge_per_record * static_cast<double>(all_.size()) *
               std::log2(static_cast<double>(k_)));
    std::sort(all_.begin(), all_.end(),
              [](const SortRecord& a, const SortRecord& b) {
                return a.key < b.key ||
                       (a.key == b.key && a.payload < b.payload);
              });
    SortOutcome o;
    o.count = all_.size();
    o.sorted = true;
    for (std::size_t i = 0; i < all_.size(); ++i) {
      o.key_xor ^= all_[i].key;
      o.key_sum += all_[i].key;
      if (i > 0 && all_[i - 1].key > all_[i].key) o.sorted = false;
    }
    if (!all_.empty()) {
      o.min_key = all_.front().key;
      o.max_key = all_.back().key;
    }
    *out_ = o;
  }

 private:
  SortWorkload w_;
  std::shared_ptr<SortOutcome> out_;
  int k_;
  std::vector<SortRecord> all_;
};

}  // namespace

MaterializedRuns write_sort_runs(
    const std::filesystem::path& root, const SortWorkload& w,
    const std::vector<std::pair<int, int>>& reader_hosts, int disks_per_host) {
  if (disks_per_host < 1) {
    throw std::invalid_argument("write_sort_runs: disks_per_host must be >= 1");
  }
  io::ChunkStoreWriter writer(root);
  MaterializedRuns out;
  SortOutcome& e = out.expected;
  e.sorted = true;  // what a correct sort of these records must report
  bool first = true;
  std::vector<std::byte> payload(w.records_per_run * sizeof(SortRecord));
  int reader_index = 0;
  for (const auto& [host, copies] : reader_hosts) {
    for (int c = 0; c < copies; ++c, ++reader_index) {
      for (int j = 0; j < w.runs_per_reader; ++j) {
        const int run = reader_index * w.runs_per_reader + j;
        std::uint64_t state =
            w.seed ^ (0xd6e8feb86659fd93ULL * static_cast<std::uint64_t>(run + 1));
        for (std::uint64_t i = 0; i < w.records_per_run; ++i) {
          SortRecord r;
          r.key = next_key(state);
          r.payload = (static_cast<std::uint64_t>(run) << 32) | i;
          std::memcpy(payload.data() + i * sizeof(SortRecord), &r, sizeof(r));
          ++e.count;
          e.key_xor ^= r.key;
          e.key_sum += r.key;
          if (first || r.key < e.min_key) e.min_key = r.key;
          if (first || r.key > e.max_key) e.max_key = r.key;
          first = false;
        }
        writer.put_chunk({host, j % disks_per_host}, /*file_id=*/run,
                         /*chunk=*/run, /*timestep=*/0, payload);
        out.total_bytes += payload.size();
      }
    }
  }
  writer.finish();
  out.total_runs = reader_index * w.runs_per_reader;
  return out;
}

SortRun run_sort_app(sim::Topology& topo, const SortAppSpec& spec,
                     const core::RuntimeConfig& rt_config) {
  core::Graph graph;
  core::Placement placement;
  auto outcome = std::make_shared<SortOutcome>();

  const SortWorkload w = spec.workload;
  int total_sorters = 0;
  for (const auto& [host, copies] : spec.sorter_hosts) {
    (void)host;
    total_sorters += copies;
  }

  io::ChunkReader* chunk_reader = spec.reader;
  const int prefetch_depth = spec.prefetch_depth;
  const int reader =
      graph.add_source("ReadRecords", [w, chunk_reader, prefetch_depth] {
        return std::make_unique<ReadRecordsFilter>(w, chunk_reader,
                                                   prefetch_depth);
      });
  const int sorter = graph.add_filter(
      "SortRun", [w] { return std::make_unique<SortRunFilter>(w); });
  const int merger = graph.add_filter("MergeRuns", [w, outcome, total_sorters] {
    return std::make_unique<MergeRunsFilter>(w, outcome, total_sorters);
  });
  graph.connect(reader, 0, sorter, 0, spec.buffer_bytes, spec.buffer_bytes);
  graph.connect(sorter, 0, merger, 0, spec.buffer_bytes, spec.buffer_bytes);

  for (const auto& [host, copies] : spec.reader_hosts) {
    placement.place(reader, host, copies);
  }
  for (const auto& [host, copies] : spec.sorter_hosts) {
    placement.place(sorter, host, copies);
  }
  placement.place(merger, spec.merge_host, 1);

  core::Runtime rt(topo, graph, placement, rt_config);
  SortRun run;
  run.makespan = rt.run_uow();
  run.outcome = *outcome;
  run.metrics = rt.metrics();
  return run;
}

}  // namespace dc::sort
