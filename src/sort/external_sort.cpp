#include "sort/external_sort.hpp"

#include <algorithm>
#include <cmath>

#include "core/filter.hpp"

namespace dc::sort {

namespace {

/// Source: scans `runs_per_reader` runs from the host-local disk, producing
/// key/payload records (synthesized deterministically — the stand-in for a
/// stored input file).
class ReadRecordsFilter final : public core::SourceFilter {
 public:
  explicit ReadRecordsFilter(SortWorkload w) : w_(w) {}

  bool step(core::FilterContext& ctx) override {
    if (run_ >= w_.runs_per_reader) return false;
    ++run_;
    ctx.read_disk(0, w_.records_per_run * w_.stored_record_bytes);
    ctx.charge(w_.gen_per_record * static_cast<double>(w_.records_per_run));
    auto& rng = ctx.rng();
    core::Buffer out = ctx.make_buffer(0);
    for (std::uint64_t i = 0; i < w_.records_per_run; ++i) {
      SortRecord r;
      r.key = rng.next_u64();
      r.payload = (static_cast<std::uint64_t>(ctx.instance_index()) << 32) | i;
      if (!out.push(r)) {
        ctx.write(0, out);
        out = ctx.make_buffer(0);
        out.push(r);
      }
    }
    if (out.size() > 0) ctx.write(0, out);
    return run_ < w_.runs_per_reader;
  }

 private:
  SortWorkload w_;
  int run_ = 0;
};

/// Accumulates records, sorts them at end of work, and emits one sorted run.
/// A filter with internal state — the class of applications that forces the
/// trailing combine filter (paper Section 1).
class SortRunFilter final : public core::Filter {
 public:
  explicit SortRunFilter(SortWorkload w) : w_(w) {}

  void process_buffer(core::FilterContext& ctx, int /*port*/,
                      const core::Buffer& buf) override {
    const auto records = buf.records<SortRecord>();
    records_.insert(records_.end(), records.begin(), records.end());
    ctx.charge(w_.gen_per_record * 0.25 * static_cast<double>(records.size()));
  }

  void process_eow(core::FilterContext& ctx) override {
    std::sort(records_.begin(), records_.end(),
              [](const SortRecord& a, const SortRecord& b) {
                return a.key < b.key ||
                       (a.key == b.key && a.payload < b.payload);
              });
    const double n = static_cast<double>(records_.size());
    ctx.charge(w_.sort_per_record * n * std::max(1.0, std::log2(n + 1.0)));
    core::Buffer out = ctx.make_buffer(0);
    for (const SortRecord& r : records_) {
      if (!out.push(r)) {
        ctx.write(0, out);
        out = ctx.make_buffer(0);
        out.push(r);
      }
    }
    if (out.size() > 0) ctx.write(0, out);
  }

 private:
  SortWorkload w_;
  std::vector<SortRecord> records_;
};

/// Combine filter: merges the sorted runs into the final output and records
/// invariants for verification. With k upstream copies the merge work is
/// n * log2(k); the output is identical no matter how many copies ran.
class MergeRunsFilter final : public core::Filter {
 public:
  MergeRunsFilter(SortWorkload w, std::shared_ptr<SortOutcome> out, int k)
      : w_(w), out_(std::move(out)), k_(std::max(2, k)) {}

  void process_buffer(core::FilterContext& ctx, int /*port*/,
                      const core::Buffer& buf) override {
    const auto records = buf.records<SortRecord>();
    all_.insert(all_.end(), records.begin(), records.end());
    ctx.charge(w_.merge_per_record * static_cast<double>(records.size()));
  }

  void process_eow(core::FilterContext& ctx) override {
    ctx.charge(w_.merge_per_record * static_cast<double>(all_.size()) *
               std::log2(static_cast<double>(k_)));
    std::sort(all_.begin(), all_.end(),
              [](const SortRecord& a, const SortRecord& b) {
                return a.key < b.key ||
                       (a.key == b.key && a.payload < b.payload);
              });
    SortOutcome o;
    o.count = all_.size();
    o.sorted = true;
    for (std::size_t i = 0; i < all_.size(); ++i) {
      o.key_xor ^= all_[i].key;
      o.key_sum += all_[i].key;
      if (i > 0 && all_[i - 1].key > all_[i].key) o.sorted = false;
    }
    if (!all_.empty()) {
      o.min_key = all_.front().key;
      o.max_key = all_.back().key;
    }
    *out_ = o;
  }

 private:
  SortWorkload w_;
  std::shared_ptr<SortOutcome> out_;
  int k_;
  std::vector<SortRecord> all_;
};

}  // namespace

SortRun run_sort_app(sim::Topology& topo, const SortAppSpec& spec,
                     const core::RuntimeConfig& rt_config) {
  core::Graph graph;
  core::Placement placement;
  auto outcome = std::make_shared<SortOutcome>();

  const SortWorkload w = spec.workload;
  int total_sorters = 0;
  for (const auto& [host, copies] : spec.sorter_hosts) {
    (void)host;
    total_sorters += copies;
  }

  const int reader = graph.add_source(
      "ReadRecords", [w] { return std::make_unique<ReadRecordsFilter>(w); });
  const int sorter = graph.add_filter(
      "SortRun", [w] { return std::make_unique<SortRunFilter>(w); });
  const int merger = graph.add_filter("MergeRuns", [w, outcome, total_sorters] {
    return std::make_unique<MergeRunsFilter>(w, outcome, total_sorters);
  });
  graph.connect(reader, 0, sorter, 0, spec.buffer_bytes, spec.buffer_bytes);
  graph.connect(sorter, 0, merger, 0, spec.buffer_bytes, spec.buffer_bytes);

  for (const auto& [host, copies] : spec.reader_hosts) {
    placement.place(reader, host, copies);
  }
  for (const auto& [host, copies] : spec.sorter_hosts) {
    placement.place(sorter, host, copies);
  }
  placement.place(merger, spec.merge_host, 1);

  core::Runtime rt(topo, graph, placement, rt_config);
  SortRun run;
  run.makespan = rt.run_uow();
  run.outcome = *outcome;
  run.metrics = rt.metrics();
  return run;
}

}  // namespace dc::sort
