#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dc::obs {
class MetricsRegistry;
}

namespace dc::exec {

/// Per-filter-instance counters of the native threaded engine. Mirrors
/// core::InstanceMetrics, but every duration is wall-clock seconds measured
/// on real threads, and input-side blocking is split out as queue-wait time
/// (the simulator's actors have no analogous wait: they are event-driven).
struct InstanceMetrics {
  int filter = -1;
  int instance = -1;
  int host = -1;
  std::string host_class;
  double work_ops = 0.0;        ///< charged compute demand (accounting only)
  double busy_time = 0.0;       ///< wall seconds inside filter callbacks
  double stall_time = 0.0;      ///< wall seconds blocked on output windows/queues
  double queue_wait_time = 0.0; ///< wall seconds blocked waiting for input
  double io_wait_time = 0.0;    ///< wall seconds blocked on real storage I/O
  std::uint64_t buffers_in = 0;
  std::uint64_t buffers_out = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t disk_bytes = 0;
  std::uint64_t acks_sent = 0;
};

/// Per-logical-stream counters; same ledger as core::StreamMetrics so the
/// differential tests can compare the two engines entry by entry.
struct StreamMetrics {
  std::string name;
  std::uint64_t buffers = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t message_bytes = 0;  ///< payload + headers
};

/// Aggregate of one filter over all its instances.
struct FilterAggregate {
  std::string name;
  int instances = 0;
  double busy_min = 0.0;
  double busy_avg = 0.0;
  double busy_max = 0.0;
  double queue_wait_avg = 0.0;
  double work_ops = 0.0;
};

/// Everything measured during one or more UOWs on the native engine.
struct Metrics {
  std::vector<InstanceMetrics> instances;
  std::vector<StreamMetrics> streams;
  double makespan = 0.0;  ///< last UOW wall-clock seconds
  std::uint64_t acks_total = 0;
  std::uint64_t ack_bytes_total = 0;

  [[nodiscard]] FilterAggregate aggregate_filter(int filter,
                                                 const std::string& name) const {
    FilterAggregate agg;
    agg.name = name;
    bool first = true;
    double busy_sum = 0.0;
    double wait_sum = 0.0;
    for (const auto& m : instances) {
      if (m.filter != filter) continue;
      ++agg.instances;
      busy_sum += m.busy_time;
      wait_sum += m.queue_wait_time;
      agg.work_ops += m.work_ops;
      if (first || m.busy_time < agg.busy_min) agg.busy_min = m.busy_time;
      if (first || m.busy_time > agg.busy_max) agg.busy_max = m.busy_time;
      first = false;
    }
    if (agg.instances > 0) {
      agg.busy_avg = busy_sum / agg.instances;
      agg.queue_wait_avg = wait_sum / agg.instances;
    }
    return agg;
  }

  [[nodiscard]] std::map<std::string, std::uint64_t> buffers_in_by_class(
      int filter) const {
    std::map<std::string, std::uint64_t> by_class;
    for (const auto& m : instances) {
      if (m.filter != filter) continue;
      by_class[m.host_class] += m.buffers_in;
    }
    return by_class;
  }
};

/// Publishes this Metrics snapshot into the unified registry under dotted
/// `<prefix>.` names — the native-engine counterpart of core::publish,
/// emitting the same key shape (so cross-engine comparisons are key-by-key)
/// plus the wall-clock-only counters queue_wait_time and io_wait_time.
void publish(const Metrics& m, obs::MetricsRegistry& reg,
             const std::string& prefix = "exec");

}  // namespace dc::exec
