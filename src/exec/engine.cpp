#include "exec/engine.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <filesystem>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/arena.hpp"
#include "core/buffer.hpp"
#include "core/filter.hpp"
#include "core/writer_state.hpp"
#include "exec/queue.hpp"
#include "io/spill.hpp"

namespace dc::exec {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Effective writer window in governed mode: the channel's governor decides
/// memory residency, so the per-target dispatch window must not be the
/// bottleneck — a producer runs ahead as far as the budget (and then the
/// spill file) lets it. Half of INT_MAX keeps the WriterState arithmetic
/// comfortably clear of overflow.
constexpr int kElasticWindow = std::numeric_limits<int>::max() / 2;

struct PendingOut {
  int port;
  core::Buffer buf;
};

/// Per-stream counters private to one worker thread; summed into the shared
/// exec::Metrics after the UOW's threads joined (the joins provide the
/// happens-before, so no atomics are needed anywhere in the hot path).
struct StreamDelta {
  std::uint64_t buffers = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t message_bytes = 0;
};

}  // namespace

/// A buffer in flight from one producer copy to one target copy set. Carries
/// the producer identity so the dequeuing consumer can settle the producer's
/// flow-control window (and, under DD, acknowledge).
struct Engine::Delivery {
  core::Buffer buf;
  Instance* producer = nullptr;
  int out_port = 0;
  int target = 0;  ///< index into the stream's target list
};

/// All transparent copies of one filter on one host. The copies share the
/// bounded input channel, demand-balancing within the host exactly like the
/// simulator's copy sets share their queues.
struct Engine::CopySetRt {
  int filter = -1;
  int host = -1;
  std::vector<Instance*> copies;
  /// Overflow store for the governed regime (null when ungoverned). Declared
  /// before the channel so the channel — whose spill hooks hold a raw
  /// pointer to it — is destroyed first.
  std::unique_ptr<io::SpillFile> spill;
  PortChannel<Delivery> channel;
};

/// Runtime view of one logical stream: the consumer copy sets it fans out to.
struct Engine::StreamRt {
  const core::StreamSpec* spec = nullptr;
  int id = -1;
  std::vector<CopySetRt*> targets;
  std::vector<int> wrr_order;  ///< target indices, one entry per consumer copy
};

/// Writer-side state of one producer copy for one output port: the shared
/// flow-control / policy state machine plus the stream binding. Synchronized
/// by the owning Instance's writer mutex (one mutex guards all of a copy's
/// writers: the owner thread dispatches, consumer threads release windows).
struct Engine::Writer : core::WriterState {
  StreamRt* stream = nullptr;
};

/// One transparent copy of a filter for the current UOW, bound to one worker
/// thread. Everything except `writers` (guarded by wmu) and the copy set
/// channel is touched only by the owning thread.
struct Engine::Instance {
  Engine* eng = nullptr;
  int filter = -1;
  int index = -1;         ///< global index among the filter's copies
  int copy_in_host = -1;  ///< index within the copy set
  CopySetRt* cset = nullptr;
  std::unique_ptr<core::Filter> user;
  std::vector<Writer> writers;  ///< per output port

  std::mutex wmu;               ///< guards every writer's WriterState
  std::condition_variable wcv;  ///< signalled when a window slot frees

  bool in_init = false;
  std::deque<PendingOut> pending;  ///< writes deferred until the callback ends

  InstanceMetrics m;
  std::vector<StreamDelta> stream_local;  ///< per stream, owner thread only
  sim::Rng rng;
  std::unique_ptr<ContextImpl> ctx;
  obs::Track* otrack = nullptr;  ///< lazily bound by Engine::obs_track
};

/// FilterContext implementation bound to one Instance. Mirrors the
/// simulator's context so filters run unmodified; charge() / read_disk() only
/// account demand here — real time is whatever the hardware takes.
struct Engine::ContextImpl final : core::FilterContext {
  Instance* inst = nullptr;
  Clock::time_point epoch;

  [[nodiscard]] int instance_index() const override { return inst->index; }
  [[nodiscard]] int num_instances() const override {
    return inst->eng->total_copies(inst->filter);
  }
  [[nodiscard]] int copy_in_host() const override { return inst->copy_in_host; }
  [[nodiscard]] int copies_on_host() const override {
    return static_cast<int>(inst->cset->copies.size());
  }
  [[nodiscard]] int host() const override { return inst->cset->host; }
  [[nodiscard]] const std::string& host_class() const override {
    return inst->eng->host_class(inst->cset->host);
  }
  [[nodiscard]] int uow_index() const override { return inst->eng->uow_index_; }
  [[nodiscard]] sim::SimTime now() const override {
    return seconds_since(epoch);  // wall seconds since the engine was built
  }
  [[nodiscard]] sim::Rng& rng() override { return inst->rng; }

  void charge(double ops) override {
    if (ops < 0.0) throw std::invalid_argument("charge: negative ops");
    inst->m.work_ops += ops;
  }

  void read_disk(int local_disk, std::uint64_t bytes) override {
    if (!inst->eng->graph_.filter(inst->filter).is_source) {
      throw std::logic_error("read_disk is only available to source filters");
    }
    if (local_disk < 0) {
      throw std::out_of_range("read_disk: no such local disk");
    }
    inst->m.disk_bytes += bytes;
  }

  void note_io_wait(double seconds) override {
    inst->m.io_wait_time += seconds;
  }

  void write(int port, core::Buffer buf) override {
    if (inst->in_init) {
      throw std::logic_error("write() is not allowed in init()");
    }
    if (port < 0 || port >= num_output_ports()) {
      throw std::out_of_range("write: bad output port");
    }
    inst->pending.push_back(PendingOut{port, std::move(buf)});
  }

  [[nodiscard]] core::Buffer make_buffer(int port) const override {
    // Arena-backed: stream buffers recycle pooled slots instead of paying
    // an allocation per buffer (ROADMAP open item 2, zero-copy data plane).
    return core::BufferArena::global().make(buffer_bytes(port));
  }

  [[nodiscard]] int num_input_ports() const override {
    return inst->eng->graph_.filter(inst->filter).num_input_ports;
  }
  [[nodiscard]] int num_output_ports() const override {
    return inst->eng->graph_.filter(inst->filter).num_output_ports;
  }
  [[nodiscard]] std::size_t buffer_bytes(int out_port) const override {
    if (out_port < 0 || out_port >= num_output_ports()) {
      throw std::out_of_range("buffer_bytes: bad output port");
    }
    const int stream =
        inst->writers[static_cast<std::size_t>(out_port)].stream->id;
    return inst->eng->buffer_bytes_[static_cast<std::size_t>(stream)];
  }
};

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

Engine::Engine(const core::Graph& graph, const core::Placement& placement,
               core::RuntimeConfig config, HostInfo hosts)
    : graph_(graph),
      placement_(placement),
      config_(std::move(config)),
      hosts_(std::move(hosts)),
      base_rng_(config_.rng_seed) {
  graph_.validate();
  core::validate(config_);
  if (config_.detection != core::FailureDetection::kNone) {
    throw std::invalid_argument(
        "exec::Engine: fault injection requires the simulator; "
        "RuntimeConfig::detection must be kNone");
  }
  // Negotiate buffer sizes exactly like the simulator: prefer the default,
  // clamped to [min, max]. Identical sizes are a precondition for
  // bit-comparable outputs between the two engines.
  buffer_bytes_.resize(static_cast<std::size_t>(graph_.num_streams()));
  for (int s = 0; s < graph_.num_streams(); ++s) {
    const auto& spec = graph_.stream(s);
    buffer_bytes_[static_cast<std::size_t>(s)] = std::clamp(
        config_.default_buffer_bytes, spec.min_buffer_bytes, spec.max_buffer_bytes);
  }
  // Placement sanity.
  for (int f = 0; f < graph_.num_filters(); ++f) {
    if (placement_.entries(f).empty()) {
      throw std::invalid_argument("exec::Engine: filter '" +
                                  graph_.filter(f).name + "' has no placement");
    }
    if (!graph_.filter(f).is_source && graph_.in_streams(f).empty()) {
      throw std::invalid_argument("exec::Engine: non-source filter '" +
                                  graph_.filter(f).name + "' has no inputs");
    }
  }
  // Stream metrics slots.
  metrics_.streams.resize(static_cast<std::size_t>(graph_.num_streams()));
  for (int s = 0; s < graph_.num_streams(); ++s) {
    metrics_.streams[static_cast<std::size_t>(s)].name = graph_.stream(s).name;
  }
  if (config_.memory_budget_bytes > 0) {
    core::GovernorConfig gc;
    gc.budget_bytes = config_.memory_budget_bytes;
    gc.spill_dir = config_.spill_dir;
    governor_ = std::make_unique<core::MemoryGovernor>(gc);
    // Budget-derived arena retention (restored when the governor dies).
    governor_->govern(core::BufferArena::global());
  }
}

Engine::~Engine() = default;

core::GovernorStats Engine::governor_stats() const {
  return governor_ ? governor_->stats() : core::GovernorStats{};
}

int Engine::total_copies(int filter) const {
  return placement_.total_copies(filter);
}

const std::string& Engine::host_class(int host) const {
  static const std::string kNative = "native";
  if (host >= 0 &&
      static_cast<std::size_t>(host) < hosts_.host_classes.size()) {
    return hosts_.host_classes[static_cast<std::size_t>(host)];
  }
  return kNative;
}

obs::Track* Engine::obs_track(Instance& inst) {
  if (obs_ == nullptr) return nullptr;
  if (inst.otrack == nullptr) {
    inst.otrack = &obs_->track("exec:" + graph_.filter(inst.filter).name +
                               "#" + std::to_string(inst.index) + "@h" +
                               std::to_string(inst.cset->host));
  }
  return inst.otrack;
}

void Engine::reset_metrics() {
  metrics_.instances.clear();
  metrics_.acks_total = 0;
  metrics_.ack_bytes_total = 0;
  metrics_.makespan = 0.0;
  for (auto& s : metrics_.streams) {
    s.buffers = 0;
    s.payload_bytes = 0;
    s.message_bytes = 0;
  }
}

// ---------------------------------------------------------------------------
// UOW setup / teardown
// ---------------------------------------------------------------------------

void Engine::build_uow() {
  // Copy sets: one per (filter, host) with at least one copy. The creation
  // order (and, below, the instance order and RNG split salts) replicates the
  // simulator exactly so both engines hand filters the same random streams.
  std::vector<std::vector<CopySetRt*>> csets_by_filter(
      static_cast<std::size_t>(graph_.num_filters()));
  for (int f = 0; f < graph_.num_filters(); ++f) {
    const int in_ports = graph_.filter(f).num_input_ports;
    for (const auto& e : placement_.entries(f)) {
      auto cset = std::make_unique<CopySetRt>();
      cset->filter = f;
      cset->host = e.host;
      cset->channel.init(in_ports, static_cast<std::size_t>(config_.window),
                         &aborted_);
      if (governor_ != nullptr && in_ports > 0) {
        // Governed regime: `window` becomes the per-port floor and the
        // channel spills overflow into this copy set's scratch file. The
        // slot size registered as the floor entitlement is the largest
        // negotiated buffer among the filter's input streams.
        std::size_t slot_bytes = 1;
        for (int s : graph_.in_streams(f)) {
          slot_bytes = std::max(slot_bytes,
                                buffer_bytes_[static_cast<std::size_t>(s)]);
        }
        cset->spill = std::make_unique<io::SpillFile>(
            std::filesystem::path(config_.spill_dir));
        io::SpillFile* file = cset->spill.get();
        SpillOps<Delivery> ops;
        ops.size = [](const Delivery& d) {
          return std::max<std::size_t>(d.buf.capacity(), 1);
        };
        ops.evict = [file](Delivery& d) {
          const std::uint64_t token = file->append(d.buf.bytes());
          // Keep routing metadata in a storage-less shell; the payload now
          // lives only in the spill file.
          core::Buffer shell = core::Buffer::adopt(nullptr, d.buf.capacity());
          shell.set_route_key(d.buf.route_key());
          d.buf = std::move(shell);
          return token;
        };
        ops.restore = [file](Delivery& d, std::uint64_t token) {
          auto slot = core::BufferArena::global().lease(d.buf.capacity());
          file->read(token, *slot);  // CRC32C-verified
          core::Buffer full = core::Buffer::adopt(std::move(slot),
                                                  d.buf.capacity());
          full.set_route_key(d.buf.route_key());
          d.buf = std::move(full);
        };
        cset->channel.bind_governor(governor_.get(), slot_bytes,
                                    std::move(ops));
      }
      csets_by_filter[static_cast<std::size_t>(f)].push_back(cset.get());
      copysets_.push_back(std::move(cset));
    }
  }

  // Stream runtime: target copy sets and the WRR expansion.
  stream_rt_.clear();
  for (int s = 0; s < graph_.num_streams(); ++s) {
    auto rt = std::make_unique<StreamRt>();
    rt->spec = &graph_.stream(s);
    rt->id = s;
    const int consumer = rt->spec->to_filter;
    const auto& consumer_entries = placement_.entries(consumer);
    const auto& consumer_sets = csets_by_filter[static_cast<std::size_t>(consumer)];
    for (std::size_t i = 0; i < consumer_sets.size(); ++i) {
      rt->targets.push_back(consumer_sets[i]);
      for (int c = 0; c < consumer_entries[i].copies; ++c) {
        rt->wrr_order.push_back(static_cast<int>(i));
      }
    }
    stream_rt_.push_back(std::move(rt));
  }

  // Instances.
  for (int f = 0; f < graph_.num_filters(); ++f) {
    const auto& entries = placement_.entries(f);
    const auto& sets = csets_by_filter[static_cast<std::size_t>(f)];
    const auto outs = graph_.out_streams(f);
    int global = 0;
    for (std::size_t p = 0; p < entries.size(); ++p) {
      for (int c = 0; c < entries[p].copies; ++c) {
        auto inst = std::make_unique<Instance>();
        inst->eng = this;
        inst->filter = f;
        inst->index = global++;
        inst->copy_in_host = c;
        inst->cset = sets[p];
        inst->user = graph_.filter(f).factory();
        if (!inst->user) {
          throw std::runtime_error("exec::Engine: factory for '" +
                                   graph_.filter(f).name + "' returned null");
        }
        if (graph_.filter(f).is_source &&
            dynamic_cast<core::SourceFilter*>(inst->user.get()) == nullptr) {
          throw std::runtime_error("exec::Engine: source filter '" +
                                   graph_.filter(f).name +
                                   "' does not derive from SourceFilter");
        }
        for (int out : outs) {
          Writer w;
          w.stream = stream_rt_[static_cast<std::size_t>(out)].get();
          w.reset(w.stream->targets.size());
          inst->writers.push_back(std::move(w));
        }
        inst->m.filter = f;
        inst->m.instance = inst->index;
        inst->m.host = entries[p].host;
        inst->m.host_class = host_class(entries[p].host);
        inst->stream_local.resize(
            static_cast<std::size_t>(graph_.num_streams()));
        inst->rng = base_rng_.split(
            static_cast<std::uint64_t>(f) * 1000003ULL +
            static_cast<std::uint64_t>(inst->index) * 257ULL +
            static_cast<std::uint64_t>(uow_index_));
        inst->ctx = std::make_unique<ContextImpl>();
        inst->ctx->inst = inst.get();
        sets[p]->copies.push_back(inst.get());
        instances_.push_back(std::move(inst));
      }
    }
  }

  // EOW bookkeeping: each consumer port expects one marker per producer copy.
  for (int s = 0; s < graph_.num_streams(); ++s) {
    const auto& spec = graph_.stream(s);
    const int producers = placement_.total_copies(spec.from_filter);
    for (CopySetRt* t : stream_rt_[static_cast<std::size_t>(s)]->targets) {
      t->channel.expect_eow(spec.to_port, producers);
    }
  }
}

void Engine::teardown_uow() {
  for (auto& inst : instances_) {
    metrics_.instances.push_back(inst->m);
    metrics_.acks_total += inst->m.acks_sent;
    metrics_.ack_bytes_total += inst->m.acks_sent * config_.ack_bytes;
    for (std::size_t s = 0; s < inst->stream_local.size(); ++s) {
      const StreamDelta& d = inst->stream_local[s];
      auto& sm = metrics_.streams[s];
      sm.buffers += d.buffers;
      sm.payload_bytes += d.payload_bytes;
      sm.message_bytes += d.message_bytes;
    }
  }
  instances_.clear();
  copysets_.clear();
  stream_rt_.clear();
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

double Engine::run_uow() {
  aborted_.store(false, std::memory_order_relaxed);
  build_uow();

  const auto t0 = Clock::now();
  for (auto& inst : instances_) inst->ctx->epoch = t0;

  std::mutex error_mu;
  std::exception_ptr first_error;
  std::vector<std::thread> threads;
  threads.reserve(instances_.size());
  for (auto& inst : instances_) {
    Instance* p = inst.get();
    threads.emplace_back([this, p, &error_mu, &first_error] {
      try {
        worker_main(*p);
      } catch (const Aborted&) {
        // Another worker failed; this one unwound cleanly.
      } catch (...) {
        {
          std::lock_guard<std::mutex> lk(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
        abort_uow();
      }
    });
  }
  for (auto& t : threads) t.join();

  const double makespan = seconds_since(t0);
  metrics_.makespan = makespan;
  teardown_uow();
  ++uow_index_;
  if (first_error) std::rethrow_exception(first_error);
  return makespan;
}

void Engine::abort_uow() {
  aborted_.store(true, std::memory_order_relaxed);
  // Wake everything under the respective mutexes so no blocked thread misses
  // the flag between its predicate check and its wait.
  for (auto& cs : copysets_) cs->channel.notify_abort();
  for (auto& inst : instances_) {
    std::lock_guard<std::mutex> lk(inst->wmu);
    inst->wcv.notify_all();
  }
}

void Engine::worker_main(Instance& inst) {
  ContextImpl& ctx = *inst.ctx;
  obs::Track* tk = obs_track(inst);

  inst.in_init = true;
  auto t0 = Clock::now();
  {
    obs::ScopedSpan span(obs_, tk, "init");
    inst.user->init(ctx);
  }
  inst.m.busy_time += seconds_since(t0);
  inst.in_init = false;

  if (graph_.filter(inst.filter).is_source) {
    source_loop(inst, ctx);
  } else {
    consume_loop(inst, ctx);
  }

  t0 = Clock::now();
  {
    obs::ScopedSpan span(obs_, tk, "eow");
    inst.user->process_eow(ctx);
  }
  inst.m.busy_time += seconds_since(t0);
  drain(inst);

  // Like the simulator, finalize() runs after the last drain; anything it
  // writes is not dispatched in either engine.
  t0 = Clock::now();
  {
    obs::ScopedSpan span(obs_, tk, "finalize");
    inst.user->finalize(ctx);
  }
  inst.m.busy_time += seconds_since(t0);

  // End-of-work markers to every consumer copy set, after all data buffers
  // (the channel mutex serializes them behind this copy's pushes).
  for (auto& w : inst.writers) {
    const int in_port = w.stream->spec->to_port;
    for (CopySetRt* t : w.stream->targets) {
      t->channel.producer_eow(in_port);
    }
  }
}

void Engine::source_loop(Instance& inst, ContextImpl& ctx) {
  auto* src = static_cast<core::SourceFilter*>(inst.user.get());
  obs::Track* tk = obs_track(inst);
  bool more = true;
  while (more) {
    const auto t0 = Clock::now();
    {
      obs::ScopedSpan span(obs_, tk, "step");
      more = src->step(ctx);
    }
    inst.m.busy_time += seconds_since(t0);
    drain(inst);
  }
}

void Engine::consume_loop(Instance& inst, ContextImpl& ctx) {
  PortChannel<Delivery>& channel = inst.cset->channel;
  obs::Track* tk = obs_track(inst);
  const bool tracing = tk != nullptr && obs_->enabled();
  for (;;) {
    Delivery d;
    int port = -1;
    double waited = 0.0;
    // One queue.wait span per pop, emitted even for instant pops so the
    // span COUNT is deterministic (goldens compare counts and order, never
    // durations).
    if (tracing) tk->begin(obs_->now(), "queue.wait");
    const auto pop = channel.pop(d, port, waited);
    if (tracing) tk->end(obs_->now(), "queue.wait");
    inst.m.queue_wait_time += waited;
    // kEow is sticky (every pop after drain reports it); treating it as
    // terminal here is what keeps the per-copy process_eow single-shot.
    if (pop == PortChannel<Delivery>::Pop::kEow) return;
    inst.m.buffers_in++;
    inst.m.bytes_in += d.buf.size();
    if (tracing) {
      tk->instant(obs_->now(), "consume",
                  static_cast<std::int64_t>(d.buf.size()), port);
    }

    // Receiver-side dequeue frees the producer's flow-control slot; under DD
    // it also acknowledges (the native ack is this direct state update —
    // the counters match the simulator, which models it as a message).
    settle_dequeue(d);
    if (core::effective_policy(
            config_.policy,
            *d.producer->writers[static_cast<std::size_t>(d.out_port)]
                 .stream->spec) == core::Policy::kDemandDriven) {
      inst.m.acks_sent++;
      if (tracing) {
        tk->instant(obs_->now(), "dd.ack",
                    static_cast<std::int64_t>(config_.ack_bytes), d.target);
      }
    }

    const auto t0 = Clock::now();
    {
      obs::ScopedSpan span(obs_, tk, "process", port);
      inst.user->process_buffer(ctx, port, d.buf);
    }
    inst.m.busy_time += seconds_since(t0);
    drain(inst);
  }
}

void Engine::settle_dequeue(const Delivery& d) {
  Instance& producer = *d.producer;
  {
    std::lock_guard<std::mutex> lk(producer.wmu);
    Writer& w = producer.writers[static_cast<std::size_t>(d.out_port)];
    w.on_dequeue(d.target);
    if (core::effective_policy(config_.policy, *w.stream->spec) ==
        core::Policy::kDemandDriven) {
      w.on_ack(d.target);
    }
  }
  producer.wcv.notify_all();
}

void Engine::drain(Instance& inst) {
  while (!inst.pending.empty()) {
    PendingOut out = std::move(inst.pending.front());
    inst.pending.pop_front();
    dispatch(inst, out.port, std::move(out.buf));
  }
}

void Engine::dispatch(Instance& inst, int port, core::Buffer buf) {
  Writer& w = inst.writers[static_cast<std::size_t>(port)];
  obs::Track* tk = obs_track(inst);
  const core::Policy policy =
      core::effective_policy(config_.policy, *w.stream->spec);
  const int key = buf.route_key();
  const auto local = [&](int t) {
    return w.stream->targets[static_cast<std::size_t>(t)]->host ==
           inst.cset->host;
  };
  const auto dead = [](int) { return false; };

  // Governed mode lifts the per-target dispatch window: memory residency is
  // the governor's call (spill absorbs overflow), so a fixed window would
  // just reintroduce the stall this regime removes.
  const int win = governor_ != nullptr ? kElasticWindow : config_.window;
  int target = -1;
  {
    std::unique_lock<std::mutex> lk(inst.wmu);
    target = w.pick(policy, win, w.stream->wrr_order, dead, local, key);
    if (target < 0) {
      // Stalled on the windows; re-evaluate after every release. pick()
      // mutates rr_next only on success, so retrying it is safe.
      const auto t0 = Clock::now();
      inst.wcv.wait(lk, [&] {
        if (aborted_.load(std::memory_order_relaxed)) return true;
        target = w.pick(policy, win, w.stream->wrr_order, dead, local, key);
        return target >= 0;
      });
      inst.m.stall_time += seconds_since(t0);
      if (tk != nullptr && obs_->enabled()) {
        // Window stall: timing-dependent, excluded from golden traces.
        tk->begin(obs_->seconds(t0), "stall");
        tk->end(obs_->now(), "stall");
      }
      if (aborted_.load(std::memory_order_relaxed)) throw Aborted{};
    }
    w.on_dispatch(target);
    if (tk != nullptr && obs_->enabled()) {
      // Routing decision: chosen target plus the policy's outstanding count
      // for it (unacked under DD, in-flight under RR/WRR) after the dispatch.
      const auto& counts = policy == core::Policy::kDemandDriven
                               ? w.unacked
                               : w.in_flight;
      tk->instant(obs_->now(), "policy.pick", target,
                  counts[static_cast<std::size_t>(target)]);
    }
  }

  StreamDelta& sd = inst.stream_local[static_cast<std::size_t>(w.stream->id)];
  sd.buffers++;
  sd.payload_bytes += buf.size();
  sd.message_bytes += buf.size() + config_.header_bytes;
  inst.m.buffers_out++;
  inst.m.bytes_out += buf.size();

  CopySetRt* cset = w.stream->targets[static_cast<std::size_t>(target)];
  Delivery d;
  d.buf = std::move(buf);
  d.producer = &inst;
  d.out_port = port;
  d.target = target;
  // Blocking bounded push: capacity backpressure beyond the writer windows.
  const double pushed = cset->channel.push(w.stream->spec->to_port, std::move(d));
  inst.m.stall_time += pushed;
  if (pushed > 0.0 && tk != nullptr && obs_->enabled()) {
    // Channel backpressure: timing-dependent, excluded from golden traces.
    tk->instant(obs_->now(), "push.wait",
                static_cast<std::int64_t>(pushed * 1e6));
  }
}

}  // namespace dc::exec
