#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

namespace dc::exec {

/// Converts a hang into a loud failure: if the guarded scope has not
/// disarmed the watchdog (by destroying it) within `timeout`, the watchdog
/// prints `what` to stderr and aborts the process. A crashed test is
/// reported by ctest; a wedged one blocks the whole suite. The concurrency
/// stress tests wrap every engine run in one of these.
class Watchdog {
 public:
  Watchdog(std::chrono::seconds timeout, std::string what)
      : what_(std::move(what)), thread_([this, timeout] {
          std::unique_lock<std::mutex> lk(mu_);
          if (!cv_.wait_for(lk, timeout, [this] { return disarmed_; })) {
            std::fprintf(stderr, "[watchdog] TIMED OUT: %s\n", what_.c_str());
            std::fflush(stderr);
            std::abort();
          }
        }) {}

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      disarmed_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool disarmed_ = false;
  std::string what_;
  std::thread thread_;
};

}  // namespace dc::exec
