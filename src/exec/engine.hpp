#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/graph.hpp"
#include "core/mem_governor.hpp"
#include "core/metrics.hpp"
#include "core/placement.hpp"
#include "core/runtime.hpp"
#include "exec/metrics.hpp"
#include "obs/recorder.hpp"
#include "sim/rng.hpp"

namespace dc::exec {

/// Optional description of the machine the native engine maps the Placement
/// onto. Host ids are the Placement's; only the class labels matter here
/// (for exec::Metrics::buffers_in_by_class and FilterContext::host_class).
/// Hosts without an entry are labelled "native".
struct HostInfo {
  std::vector<std::string> host_classes;  ///< indexed by host id
};

/// The native threaded execution engine: instantiates a core::FilterGraph +
/// Placement on real OS threads — one worker thread per transparent copy,
/// bounded MPMC buffer queues per copy set, and the same writer policies
/// (RR / WRR / DD) as the simulator runtime, driven through the shared
/// core::WriterState so both engines run one policy implementation.
///
/// Execution model per UOW: fresh Filter objects are created per copy
/// (init / process / finalize cycle, identical to the simulator). Source
/// copies loop step() and dispatch their outputs through per-target flow
/// control windows (RR/WRR cap in-flight buffers; DD caps unacknowledged
/// ones — a consumer acknowledges a buffer when it dequeues it, and ties
/// prefer co-located copies). Consumer copies of one (filter, host) pair
/// share the copy set's input queues, demand-balancing within the host.
/// End-of-work markers propagate per producer copy; every consumer copy runs
/// process_eow after all markers arrived and the shared queues drained.
///
/// Differences from the simulator: time is wall-clock, charge()/read_disk()
/// only account demand (nothing is retired on a virtual CPU or disk), and
/// fault injection is not supported (RuntimeConfig::detection must be
/// kNone). Per-copy RNG streams are seeded exactly like the simulator's, so
/// for the same graph, placement, and seed the two engines feed identical
/// random sequences to the filters.
class Engine {
 public:
  Engine(const core::Graph& graph, const core::Placement& placement,
         core::RuntimeConfig config = {}, HostInfo hosts = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs one unit of work to completion on real threads; returns the UOW
  /// wall-clock makespan in seconds. Exceptions raised by filter callbacks
  /// abort the UOW (all threads unwind and join) and rethrow here.
  double run_uow();

  /// Cumulative metrics across all UOWs run so far.
  [[nodiscard]] const Metrics& metrics() const { return metrics_; }
  void reset_metrics();

  [[nodiscard]] const core::RuntimeConfig& config() const { return config_; }
  [[nodiscard]] int total_copies(int filter) const;
  [[nodiscard]] const std::string& host_class(int host) const;

  /// Memory-governor counters (all zero when the engine runs ungoverned,
  /// i.e. RuntimeConfig::memory_budget_bytes == 0). Cumulative across UOWs.
  [[nodiscard]] core::GovernorStats governor_stats() const;

  /// Attaches a cross-engine observability session (nullptr detaches). Each
  /// worker thread records onto its own "exec:<filter>#<copy>@h<host>" track:
  /// init / step / process / eow / finalize callback spans, one queue.wait
  /// span per channel pop, consume and DD-ack instants, and a policy.pick
  /// instant (chosen target + outstanding count) per dispatched buffer.
  /// Timestamps are wall seconds since the session epoch. The session must
  /// outlive every run_uow() call; detached (the default), each emit site
  /// costs one pointer null check.
  void set_obs(obs::TraceSession* session) { obs_ = session; }
  [[nodiscard]] obs::TraceSession* obs() const { return obs_; }

  // Implementation types, public only so that helper structs in the
  // translation unit can reference them; not part of the stable API.
  struct Instance;
  struct CopySetRt;
  struct StreamRt;
  struct ContextImpl;
  struct Delivery;
  struct Writer;

 private:
  void build_uow();
  void teardown_uow();
  void worker_main(Instance& inst);
  void consume_loop(Instance& inst, ContextImpl& ctx);
  void source_loop(Instance& inst, ContextImpl& ctx);
  void drain(Instance& inst);
  void dispatch(Instance& inst, int port, core::Buffer buf);
  void settle_dequeue(const Delivery& d);
  void abort_uow();
  /// Lazily creates the instance's obs track; nullptr when no session is
  /// attached.
  obs::Track* obs_track(Instance& inst);

  const core::Graph& graph_;
  const core::Placement& placement_;
  core::RuntimeConfig config_;
  HostInfo hosts_;
  std::vector<std::size_t> buffer_bytes_;  ///< negotiated, per stream

  // Live only between build_uow() and teardown_uow().
  std::vector<std::unique_ptr<Instance>> instances_;
  std::vector<std::unique_ptr<CopySetRt>> copysets_;
  std::vector<std::unique_ptr<StreamRt>> stream_rt_;
  std::atomic<bool> aborted_{false};
  int uow_index_ = 0;
  /// Non-null iff config_.memory_budget_bytes > 0; outlives every copy set.
  std::unique_ptr<core::MemoryGovernor> governor_;

  Metrics metrics_;
  sim::Rng base_rng_;
  obs::TraceSession* obs_ = nullptr;
};

}  // namespace dc::exec
