#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "core/mem_governor.hpp"

namespace dc::exec {

/// Thrown out of blocking channel operations when the engine aborts a UOW
/// (a filter callback raised); worker threads unwind without producing more.
struct Aborted {};

/// How a governed PortChannel moves an item between memory and disk. The
/// channel itself is storage-agnostic; the engine supplies these when it
/// binds a MemoryGovernor (so PortChannel<int> in the contract tests keeps
/// working with no hooks at all).
template <typename T>
struct SpillOps {
  /// Bytes the item occupies in memory — what the governor admission is
  /// charged (buffer capacity for the engines).
  std::function<std::size_t(const T&)> size;
  /// Writes the item's payload to the spill file and strips its storage
  /// (leaving a shell that keeps routing metadata). Returns the spill token.
  std::function<std::uint64_t(T&)> evict;
  /// Re-materializes the payload for token into the shell item (arena lease
  /// + SpillFile::read, CRC-checked).
  std::function<void(T&, std::uint64_t)> restore;
};

/// MPMC channel feeding one copy set: one FIFO queue per input port behind a
/// single mutex + condvar pair, plus the end-of-work bookkeeping and the
/// port-fair rotation — the native-thread equivalent of the simulator's
/// CopySet queues.
///
/// Two capacity regimes:
///
///   FIXED (no governor bound — the seed semantics, bit-for-bit): capacity
///   is per port; producers block in push() while the port is full
///   (backpressure beyond the writer windows).
///
///   GOVERNED (bind_governor called): `capacity` becomes the per-port FLOOR
///   — the fixed-window entitlement that always resides in memory — and
///   push() NEVER blocks. An item beyond the floor asks the shared
///   MemoryGovernor for an elastic grant; on denial the item's payload is
///   transparently evicted to the bound spill file and a storage-less shell
///   takes its queue slot. pop() re-materializes spilled payloads lazily at
///   the front of the queue, so delivery order is EXACTLY the push order —
///   spilling is invisible to consumers and outputs stay bit-identical to
///   the fixed-window baseline. The eviction and restore run under the
///   channel mutex: slower under pressure than a fancier unlocked scheme,
///   but order is trivially exact and the abort path cannot race a
///   half-evicted item.
///
/// End-of-work contract (STICKY): once every expected marker has arrived and
/// the queues are drained, pop() returns kEow immediately — on every call,
/// forever. Each consumer copy of the set therefore observes at least one
/// kEow (so every copy gets to run its own process_eow), and a consumer
/// must treat kEow as terminal: popping again is harmless (it returns kEow
/// again without blocking) but never yields another item. The engines'
/// consumer loops return on the first kEow.
///
/// Abort contract: push() and pop() observe the abort flag on entry and
/// after any wait, and throw Aborted{} — a producer feeding a never-full
/// queue must not keep producing after another worker aborted the UOW.
template <typename T>
class PortChannel {
 public:
  enum class Pop { kItem, kEow };

  void init(int ports, std::size_t capacity,
            const std::atomic<bool>* aborted) {
    queues_.assign(static_cast<std::size_t>(ports), {});
    eow_pending_.assign(static_cast<std::size_t>(ports), 0);
    rr_port_ = 0;
    capacity_ = capacity;
    aborted_ = aborted;
    if (gov_ != nullptr) unbind_governor();
  }

  /// Switches the channel into the governed regime: `capacity` (from init)
  /// becomes the per-port floor of `slot_bytes`-sized slots registered with
  /// `gov`, and `ops` moves payloads to/from the spill store on elastic
  /// denial. Call between init() and the first push.
  void bind_governor(core::MemoryGovernor* gov, std::size_t slot_bytes,
                     SpillOps<T> ops) {
    std::lock_guard<std::mutex> lk(mu_);
    gov_ = gov;
    ops_ = std::move(ops);
    queue_ids_.clear();
    mem_floor_.assign(queues_.size(), 0);
    for (std::size_t p = 0; p < queues_.size(); ++p) {
      queue_ids_.push_back(gov_->register_queue(capacity_, slot_bytes));
    }
  }

  /// Returns the queues to the fixed regime and releases the governor
  /// registrations (any still-charged bytes are subtracted there). Spilled
  /// items still queued keep their tokens; the engine drops the whole spill
  /// file with the copy set, so abort teardown strands nothing.
  void unbind_governor() {
    std::lock_guard<std::mutex> lk(mu_);
    if (gov_ != nullptr) {
      for (int id : queue_ids_) gov_->unregister_queue(id);
    }
    queue_ids_.clear();
    mem_floor_.clear();
    gov_ = nullptr;
    ops_ = {};
  }

  ~PortChannel() { unbind_governor(); }

  /// One marker expected per producer copy of the stream entering `port`.
  void expect_eow(int port, int producers) {
    eow_pending_[static_cast<std::size_t>(port)] = producers;
  }

  /// Bounded push; returns seconds spent blocked on capacity. Fixed regime:
  /// blocks while the port is full. Governed regime: never blocks — denial
  /// of an elastic grant spills the payload instead (returns 0.0 wait).
  /// Throws Aborted if the UOW aborted — checked on entry, not just after
  /// blocking, so a producer whose queue never fills still stops promptly.
  double push(int port, T item) {
    std::unique_lock<std::mutex> lk(mu_);
    if (aborted()) throw Aborted{};
    const auto pi = static_cast<std::size_t>(port);
    auto& q = queues_[pi];

    if (gov_ != nullptr) {
      const std::size_t bytes = ops_.size(item);
      const bool within_floor = mem_floor_[pi] < capacity_;
      Slot s;
      s.bytes = bytes;
      if (gov_->try_admit(queue_ids_[pi], bytes, within_floor)) {
        s.elastic = !within_floor;
        if (within_floor) ++mem_floor_[pi];
        s.item = std::move(item);
      } else {
        // Elastic denial: evict under the mutex — push order IS delivery
        // order, and abort cannot observe a half-moved item.
        s.spilled = true;
        s.token = ops_.evict(item);
        s.item = std::move(item);  // the storage-less shell
        gov_->note_spill(bytes);
      }
      q.push_back(std::move(s));
      data_.notify_all();
      return 0.0;
    }

    double waited = 0.0;
    if (q.size() >= capacity_) {
      const auto t0 = std::chrono::steady_clock::now();
      space_.wait(lk, [&] { return q.size() < capacity_ || aborted(); });
      waited = seconds_since(t0);
      if (aborted()) throw Aborted{};
    }
    Slot s;
    s.item = std::move(item);
    q.push_back(std::move(s));
    data_.notify_all();
    return waited;
  }

  /// Blocks until a delivery or end-of-work; `waited` reports the seconds
  /// spent blocked with nothing to do. Spilled items are re-materialized
  /// here, at the queue front, in exactly their push order.
  Pop pop(T& out, int& port, double& waited) {
    std::unique_lock<std::mutex> lk(mu_);
    waited = 0.0;
    if (!ready_locked()) {
      const auto t0 = std::chrono::steady_clock::now();
      data_.wait(lk, [&] { return ready_locked() || aborted(); });
      waited = seconds_since(t0);
    }
    if (aborted()) throw Aborted{};
    const int ports = static_cast<int>(queues_.size());
    for (int i = 0; i < ports; ++i) {
      const int p = (rr_port_ + i) % ports;
      const auto pi = static_cast<std::size_t>(p);
      auto& q = queues_[pi];
      if (q.empty()) continue;
      rr_port_ = (p + 1) % ports;
      Slot s = std::move(q.front());
      q.pop_front();
      if (gov_ != nullptr) {
        if (s.spilled) {
          ops_.restore(s.item, s.token);
          gov_->note_readmit(s.bytes);
        } else {
          gov_->release(queue_ids_[pi], s.bytes, s.elastic);
          if (!s.elastic && mem_floor_[pi] > 0) --mem_floor_[pi];
        }
      }
      out = std::move(s.item);
      port = p;
      space_.notify_all();
      return Pop::kItem;
    }
    return Pop::kEow;  // all queues empty and every marker arrived
  }

  /// One producer copy finished the stream entering `port`. Markers cannot
  /// overtake data: the producer's pushes completed before this call, so the
  /// consumer drains them before pop() ever reports kEow.
  void producer_eow(int port) {
    std::lock_guard<std::mutex> lk(mu_);
    auto& pending = eow_pending_[static_cast<std::size_t>(port)];
    if (pending > 0) --pending;
    data_.notify_all();
  }

  /// Wakes every blocked producer and consumer so they observe the abort
  /// flag. The caller must have set the flag before calling.
  void notify_abort() {
    std::lock_guard<std::mutex> lk(mu_);
    data_.notify_all();
    space_.notify_all();
  }

 private:
  /// One queued delivery. In the governed regime the channel remembers how
  /// the item entered memory (floor / elastic / spilled) so the release or
  /// restore on pop mirrors the admission exactly.
  struct Slot {
    T item{};
    std::size_t bytes = 0;
    std::uint64_t token = 0;
    bool spilled = false;
    bool elastic = false;
  };

  [[nodiscard]] bool aborted() const {
    return aborted_ != nullptr && aborted_->load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool ready_locked() const {
    for (const auto& q : queues_) {
      if (!q.empty()) return true;
    }
    for (int e : eow_pending_) {
      if (e > 0) return false;
    }
    return true;  // end of work
  }

  static double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  }

  std::mutex mu_;
  std::condition_variable data_;   ///< consumers: delivery or EOW progress
  std::condition_variable space_;  ///< producers: queue capacity
  std::vector<std::deque<Slot>> queues_;
  std::vector<int> eow_pending_;
  int rr_port_ = 0;
  std::size_t capacity_ = 1;
  const std::atomic<bool>* aborted_ = nullptr;

  // Governed regime (null / empty in the fixed regime).
  core::MemoryGovernor* gov_ = nullptr;
  SpillOps<T> ops_;
  std::vector<int> queue_ids_;          ///< per port, from register_queue
  std::vector<std::size_t> mem_floor_;  ///< per port, in-memory floor items
};

}  // namespace dc::exec
