#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace dc::exec {

/// Thrown out of blocking channel operations when the engine aborts a UOW
/// (a filter callback raised); worker threads unwind without producing more.
struct Aborted {};

/// Bounded MPMC channel feeding one copy set: one FIFO queue per input port
/// behind a single mutex + condvar pair, plus the end-of-work bookkeeping
/// and the port-fair rotation — the native-thread equivalent of the
/// simulator's CopySet queues.
///
/// Capacity is per port. Producers block in push() while the port is full
/// (backpressure beyond the writer windows); consumers block in pop() until
/// a delivery is available or, once every producer copy has signalled
/// end-of-work on every port and the queues drained, receive kEow.
///
/// End-of-work contract (STICKY): once every expected marker has arrived and
/// the queues are drained, pop() returns kEow immediately — on every call,
/// forever. Each consumer copy of the set therefore observes at least one
/// kEow (so every copy gets to run its own process_eow), and a consumer
/// must treat kEow as terminal: popping again is harmless (it returns kEow
/// again without blocking) but never yields another item. The engines'
/// consumer loops return on the first kEow.
///
/// Abort contract: push() and pop() observe the abort flag on entry and
/// after any wait, and throw Aborted{} — a producer feeding a never-full
/// queue must not keep producing after another worker aborted the UOW.
template <typename T>
class PortChannel {
 public:
  enum class Pop { kItem, kEow };

  void init(int ports, std::size_t capacity,
            const std::atomic<bool>* aborted) {
    queues_.assign(static_cast<std::size_t>(ports), {});
    eow_pending_.assign(static_cast<std::size_t>(ports), 0);
    rr_port_ = 0;
    capacity_ = capacity;
    aborted_ = aborted;
  }

  /// One marker expected per producer copy of the stream entering `port`.
  void expect_eow(int port, int producers) {
    eow_pending_[static_cast<std::size_t>(port)] = producers;
  }

  /// Blocking bounded push; returns seconds spent blocked on capacity.
  /// Throws Aborted if the UOW aborted — checked on entry, not just after
  /// blocking, so a producer whose queue never fills still stops promptly.
  double push(int port, T item) {
    std::unique_lock<std::mutex> lk(mu_);
    if (aborted()) throw Aborted{};
    auto& q = queues_[static_cast<std::size_t>(port)];
    double waited = 0.0;
    if (q.size() >= capacity_) {
      const auto t0 = std::chrono::steady_clock::now();
      space_.wait(lk, [&] { return q.size() < capacity_ || aborted(); });
      waited = seconds_since(t0);
      if (aborted()) throw Aborted{};
    }
    q.push_back(std::move(item));
    data_.notify_all();
    return waited;
  }

  /// Blocks until a delivery or end-of-work; `waited` reports the seconds
  /// spent blocked with nothing to do.
  Pop pop(T& out, int& port, double& waited) {
    std::unique_lock<std::mutex> lk(mu_);
    waited = 0.0;
    if (!ready_locked()) {
      const auto t0 = std::chrono::steady_clock::now();
      data_.wait(lk, [&] { return ready_locked() || aborted(); });
      waited = seconds_since(t0);
    }
    if (aborted()) throw Aborted{};
    const int ports = static_cast<int>(queues_.size());
    for (int i = 0; i < ports; ++i) {
      const int p = (rr_port_ + i) % ports;
      auto& q = queues_[static_cast<std::size_t>(p)];
      if (q.empty()) continue;
      rr_port_ = (p + 1) % ports;
      out = std::move(q.front());
      q.pop_front();
      port = p;
      space_.notify_all();
      return Pop::kItem;
    }
    return Pop::kEow;  // all queues empty and every marker arrived
  }

  /// One producer copy finished the stream entering `port`. Markers cannot
  /// overtake data: the producer's pushes completed before this call, so the
  /// consumer drains them before pop() ever reports kEow.
  void producer_eow(int port) {
    std::lock_guard<std::mutex> lk(mu_);
    auto& pending = eow_pending_[static_cast<std::size_t>(port)];
    if (pending > 0) --pending;
    data_.notify_all();
  }

  /// Wakes every blocked producer and consumer so they observe the abort
  /// flag. The caller must have set the flag before calling.
  void notify_abort() {
    std::lock_guard<std::mutex> lk(mu_);
    data_.notify_all();
    space_.notify_all();
  }

 private:
  [[nodiscard]] bool aborted() const {
    return aborted_ != nullptr && aborted_->load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool ready_locked() const {
    for (const auto& q : queues_) {
      if (!q.empty()) return true;
    }
    for (int e : eow_pending_) {
      if (e > 0) return false;
    }
    return true;  // end of work
  }

  static double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  }

  std::mutex mu_;
  std::condition_variable data_;   ///< consumers: delivery or EOW progress
  std::condition_variable space_;  ///< producers: queue capacity
  std::vector<std::deque<T>> queues_;
  std::vector<int> eow_pending_;
  int rr_port_ = 0;
  std::size_t capacity_ = 1;
  const std::atomic<bool>* aborted_ = nullptr;
};

}  // namespace dc::exec
