#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "data/volume.hpp"

namespace dc::data {

/// Location of a dataset file on the simulated storage system.
struct FileLocation {
  int host = -1;
  int disk = 0;
};

/// A chunk a given host must read: which file holds it, where, how large.
struct ChunkRef {
  int chunk = -1;
  int file = -1;
  int disk = 0;
  std::uint64_t bytes = 0;
};

/// Maps the declustered dataset files onto the disks of the simulated
/// cluster and answers "which chunks does host H read from which local
/// disk?" — the question the Read filters and the ADR partitioner ask.
///
/// Placement styles reproduce the paper's experiments:
///  - uniform: files dealt round-robin over the (host, disk) pairs in use;
///  - skewed:  start uniform, then move a fraction of the files resident on
///    one set of hosts onto another set (Section 4.5 moves P% of the files
///    from the Blue nodes to the Rogue nodes).
class DatasetStore {
 public:
  DatasetStore(ChunkLayout layout, std::vector<int> file_of_chunk, int num_files,
               int floats_per_point = 1);

  /// Deals all files round-robin across `locations`.
  void place_uniform(const std::vector<FileLocation>& locations);

  /// Moves llround(fraction * |files on from_hosts|) files (lowest file ids
  /// first, deterministically) to `to_locations`, dealt round-robin.
  ///
  /// Edge cases, all deliberate:
  ///  - fraction 0.0 moves nothing; fraction 1.0 moves every candidate file.
  ///  - an empty `from_hosts` selects no candidates, so nothing moves (this
  ///    is not an error — "move from nowhere" is a vacuous request).
  ///  - `to_locations` may overlap `from_hosts`: a file can land back on a
  ///    source host (e.g. on another disk). It still consumes a round-robin
  ///    slot — the skew experiment (Section 4.5) specifies placement, not
  ///    traffic, so a self-move is a valid placement.
  /// Throws std::invalid_argument if fraction is outside [0, 1] or
  /// `to_locations` is empty.
  void move_fraction(const std::vector<int>& from_hosts,
                     const std::vector<FileLocation>& to_locations,
                     double fraction);

  [[nodiscard]] const ChunkLayout& layout() const { return layout_; }
  [[nodiscard]] int num_files() const { return num_files_; }
  [[nodiscard]] int floats_per_point() const { return floats_per_point_; }
  [[nodiscard]] const FileLocation& location_of_file(int file) const {
    return location_.at(static_cast<std::size_t>(file));
  }
  [[nodiscard]] int file_of_chunk(int chunk) const {
    return file_of_chunk_.at(static_cast<std::size_t>(chunk));
  }

  /// All chunks resident on `host`, ordered by chunk id.
  [[nodiscard]] std::vector<ChunkRef> chunks_on_host(int host) const;

  /// Bytes resident on `host` (sum over its chunks).
  [[nodiscard]] std::uint64_t bytes_on_host(int host) const;

  [[nodiscard]] std::uint64_t total_bytes() const {
    return layout_.total_bytes(floats_per_point_);
  }

  /// Hosts that currently hold at least one file.
  [[nodiscard]] std::vector<int> data_hosts() const;

 private:
  ChunkLayout layout_;
  std::vector<int> file_of_chunk_;
  int num_files_ = 0;
  int floats_per_point_ = 1;
  std::vector<FileLocation> location_;  ///< per file
};

}  // namespace dc::data
