#include "data/hilbert.hpp"

#include <stdexcept>

namespace dc::data {
namespace {

constexpr int kDims = 3;

// Skilling, "Programming the Hilbert curve", AIP Conf. Proc. 707 (2004).
// In the transpose representation the Hilbert index bits are distributed
// across the coordinate words: bit k of the index lives in word (k % n).

void axes_to_transpose(std::uint32_t x[kDims], int bits) {
  std::uint32_t m = 1u << (bits - 1);
  // Inverse undo.
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    const std::uint32_t p = q - 1;
    for (int i = 0; i < kDims; ++i) {
      if (x[i] & q) {
        x[0] ^= p;  // invert
      } else {
        const std::uint32_t t = (x[0] ^ x[i]) & p;
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
  // Gray encode.
  for (int i = 1; i < kDims; ++i) x[i] ^= x[i - 1];
  std::uint32_t t = 0;
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    if (x[kDims - 1] & q) t ^= q - 1;
  }
  for (int i = 0; i < kDims; ++i) x[i] ^= t;
}

void transpose_to_axes(std::uint32_t x[kDims], int bits) {
  const std::uint32_t n = 2u << (bits - 1);
  // Gray decode by H ^ (H/2).
  std::uint32_t t = x[kDims - 1] >> 1;
  for (int i = kDims - 1; i > 0; --i) x[i] ^= x[i - 1];
  x[0] ^= t;
  // Undo excess work.
  for (std::uint32_t q = 2; q != n; q <<= 1) {
    const std::uint32_t p = q - 1;
    for (int i = kDims - 1; i >= 0; --i) {
      if (x[i] & q) {
        x[0] ^= p;
      } else {
        const std::uint32_t t2 = (x[0] ^ x[i]) & p;
        x[0] ^= t2;
        x[i] ^= t2;
      }
    }
  }
}

void check_args(std::array<std::uint32_t, 3> coords, int bits) {
  if (bits < 1 || bits > 20) {
    throw std::invalid_argument("hilbert: bits must be in [1, 20]");
  }
  for (auto c : coords) {
    if (c >= (1u << bits)) {
      throw std::invalid_argument("hilbert: coordinate out of range");
    }
  }
}

}  // namespace

std::uint64_t hilbert_index(std::array<std::uint32_t, 3> coords, int bits) {
  check_args(coords, bits);
  std::uint32_t x[kDims] = {coords[0], coords[1], coords[2]};
  axes_to_transpose(x, bits);
  // Interleave: MSB-first, word order x[0], x[1], x[2].
  std::uint64_t index = 0;
  for (int b = bits - 1; b >= 0; --b) {
    for (int i = 0; i < kDims; ++i) {
      index = (index << 1) | ((x[i] >> b) & 1u);
    }
  }
  return index;
}

std::array<std::uint32_t, 3> hilbert_coords(std::uint64_t index, int bits) {
  if (bits < 1 || bits > 20) {
    throw std::invalid_argument("hilbert: bits must be in [1, 20]");
  }
  std::uint32_t x[kDims] = {0, 0, 0};
  // De-interleave into the transpose representation.
  int bit = kDims * bits - 1;
  for (int b = bits - 1; b >= 0; --b) {
    for (int i = 0; i < kDims; ++i) {
      x[i] |= static_cast<std::uint32_t>((index >> bit) & 1u) << b;
      --bit;
    }
  }
  transpose_to_axes(x, bits);
  return {x[0], x[1], x[2]};
}

}  // namespace dc::data
