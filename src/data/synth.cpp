#include "data/synth.hpp"

#include <cmath>

namespace dc::data {

PlumeField::PlumeField(std::uint64_t seed, int num_plumes) {
  sim::Rng rng(seed);
  plumes_.reserve(static_cast<std::size_t>(num_plumes));
  for (int i = 0; i < num_plumes; ++i) {
    Plume p;
    p.cx = static_cast<float>(rng.uniform(0.2, 0.8));
    p.cy = static_cast<float>(rng.uniform(0.2, 0.8));
    p.cz = static_cast<float>(rng.uniform(0.2, 0.8));
    p.vx = static_cast<float>(rng.uniform(-0.03, 0.03));
    p.vy = static_cast<float>(rng.uniform(-0.03, 0.03));
    p.vz = static_cast<float>(rng.uniform(-0.03, 0.03));
    p.sigma0 = static_cast<float>(rng.uniform(0.08, 0.2));
    p.growth = static_cast<float>(rng.uniform(0.002, 0.01));
    p.amplitude = static_cast<float>(rng.uniform(0.5, 1.0));
    plumes_.push_back(p);
  }
  gradient_[0] = static_cast<float>(rng.uniform(0.0, 0.1));
  gradient_[1] = static_cast<float>(rng.uniform(0.0, 0.1));
  gradient_[2] = static_cast<float>(rng.uniform(0.0, 0.1));
  for (auto& wave : waves_) {
    wave.amplitude = static_cast<float>(rng.uniform(0.25, 0.45));
    wave.frequency = static_cast<float>(rng.uniform(1.5, 3.0));
    wave.phase = static_cast<float>(rng.uniform(0.0, 6.2831853));
    wave.drift = static_cast<float>(rng.uniform(0.02, 0.08));
  }
}

float PlumeField::value(float x, float y, float z, float t) const {
  constexpr float kTwoPi = 6.2831853071795865f;
  float v = 1.0f + gradient_[0] * x + gradient_[1] * y + gradient_[2] * z;
  const float axes[3] = {x, y, z};
  for (int a = 0; a < 3; ++a) {
    const Wave& wave = waves_[a];
    v += wave.amplitude *
         std::sin(kTwoPi * (wave.frequency * axes[a] + wave.drift * t) +
                  wave.phase);
  }
  for (const auto& p : plumes_) {
    const float cx = p.cx + p.vx * t;
    const float cy = p.cy + p.vy * t;
    const float cz = p.cz + p.vz * t;
    const float sigma = p.sigma0 + p.growth * t;
    const float dx = x - cx;
    const float dy = y - cy;
    const float dz = z - cz;
    const float r2 = dx * dx + dy * dy + dz * dz;
    v += p.amplitude * std::exp(-r2 / (2.0f * sigma * sigma));
  }
  return v;
}

std::size_t PlumeField::fill_chunk(const ChunkLayout& layout, int chunk,
                                   float timestep, std::vector<float>& out) const {
  const CellBox box = layout.chunk_box(chunk);
  const auto& g = layout.grid();
  out.clear();
  out.reserve(static_cast<std::size_t>(box.points()));
  const float inv_x = 1.0f / static_cast<float>(g.nx);
  const float inv_y = 1.0f / static_cast<float>(g.ny);
  const float inv_z = 1.0f / static_cast<float>(g.nz);
  for (int z = box.lo[2]; z <= box.hi[2]; ++z) {
    for (int y = box.lo[1]; y <= box.hi[1]; ++y) {
      for (int x = box.lo[0]; x <= box.hi[0]; ++x) {
        out.push_back(value(static_cast<float>(x) * inv_x,
                            static_cast<float>(y) * inv_y,
                            static_cast<float>(z) * inv_z, timestep));
      }
    }
  }
  return out.size();
}

}  // namespace dc::data
