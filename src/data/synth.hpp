#pragma once

#include <cstdint>
#include <vector>

#include "data/volume.hpp"
#include "sim/rng.hpp"

namespace dc::data {

/// Synthetic stand-in for the ParSSim reactive-transport output used in the
/// paper: a smooth scalar field on [0,1]^3 formed by superposed Gaussian
/// chemical plumes that advect and spread over time, riding on slowly
/// drifting long-wavelength concentration waves plus a gentle background
/// gradient. The waves make the isosurface percolate the whole domain (like
/// a transport front), so most dataset chunks contribute surface — the
/// workload shape the paper's 470-buffer triangle stream implies.
/// Deterministic in (seed, timestep).
class PlumeField {
 public:
  explicit PlumeField(std::uint64_t seed, int num_plumes = 5);

  /// Field value at normalized coordinates, for timestep `t` (0, 1, 2, ...).
  [[nodiscard]] float value(float x, float y, float z, float t) const;

  [[nodiscard]] int num_plumes() const { return static_cast<int>(plumes_.size()); }

  /// Samples the grid points of one chunk (cells + one-point halo) into
  /// `out`, ordered x-fastest. Returns the number of samples written.
  std::size_t fill_chunk(const ChunkLayout& layout, int chunk, float timestep,
                         std::vector<float>& out) const;

 private:
  struct Plume {
    float cx, cy, cz;     ///< initial center
    float vx, vy, vz;     ///< drift per timestep
    float sigma0;         ///< initial width
    float growth;         ///< width growth per timestep
    float amplitude;
  };
  std::vector<Plume> plumes_;
  float gradient_[3] = {0.f, 0.f, 0.f};
  // Long-wavelength concentration waves, one per axis: amplitude, spatial
  // frequency (cycles over the unit cube), phase, and drift per timestep.
  struct Wave {
    float amplitude, frequency, phase, drift;
  };
  Wave waves_[3]{};
};

}  // namespace dc::data
