#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace dc::data {

/// Size of a rectilinear grid in cells. Grid points are (nx+1)(ny+1)(nz+1).
struct GridDims {
  int nx = 0;
  int ny = 0;
  int nz = 0;
  [[nodiscard]] std::int64_t cells() const {
    return static_cast<std::int64_t>(nx) * ny * nz;
  }
  [[nodiscard]] std::int64_t points() const {
    return static_cast<std::int64_t>(nx + 1) * (ny + 1) * (nz + 1);
  }
};

/// Inclusive-exclusive cell box [lo, hi) of a chunk within the grid.
struct CellBox {
  std::array<int, 3> lo{};
  std::array<int, 3> hi{};
  [[nodiscard]] std::int64_t cells() const {
    return static_cast<std::int64_t>(hi[0] - lo[0]) * (hi[1] - lo[1]) *
           (hi[2] - lo[2]);
  }
  /// Grid points needed to evaluate all cells (one-point halo per axis).
  [[nodiscard]] std::int64_t points() const {
    return static_cast<std::int64_t>(hi[0] - lo[0] + 1) * (hi[1] - lo[1] + 1) *
           (hi[2] - lo[2] + 1);
  }
};

/// Regular decomposition of a grid into cx*cy*cz equal chunks — the paper
/// partitions each timestep "into equal sub-volumes in three dimensions".
class ChunkLayout {
 public:
  ChunkLayout() = default;
  ChunkLayout(GridDims grid, int cx, int cy, int cz);

  [[nodiscard]] const GridDims& grid() const { return grid_; }
  [[nodiscard]] int chunks_x() const { return cx_; }
  [[nodiscard]] int chunks_y() const { return cy_; }
  [[nodiscard]] int chunks_z() const { return cz_; }
  [[nodiscard]] int num_chunks() const { return cx_ * cy_ * cz_; }

  [[nodiscard]] std::array<int, 3> chunk_coords(int chunk) const;
  [[nodiscard]] int chunk_id(std::array<int, 3> coords) const;
  [[nodiscard]] CellBox chunk_box(int chunk) const;

  /// Stored size of one chunk: one float per grid point of the chunk
  /// (cells + halo), times `floats_per_point` (e.g. several chemical
  /// species in the ParSSim output).
  [[nodiscard]] std::uint64_t chunk_bytes(int chunk, int floats_per_point = 1) const;

  /// Total stored dataset size.
  [[nodiscard]] std::uint64_t total_bytes(int floats_per_point = 1) const;

 private:
  GridDims grid_{};
  int cx_ = 0, cy_ = 0, cz_ = 0;
};

}  // namespace dc::data
