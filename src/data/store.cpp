#include "data/store.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dc::data {

DatasetStore::DatasetStore(ChunkLayout layout, std::vector<int> file_of_chunk,
                           int num_files, int floats_per_point)
    : layout_(layout),
      file_of_chunk_(std::move(file_of_chunk)),
      num_files_(num_files),
      floats_per_point_(floats_per_point) {
  if (num_files_ <= 0) {
    throw std::invalid_argument("DatasetStore: num_files must be positive");
  }
  if (static_cast<int>(file_of_chunk_.size()) != layout_.num_chunks()) {
    throw std::invalid_argument("DatasetStore: file map size mismatch");
  }
  for (int f : file_of_chunk_) {
    if (f < 0 || f >= num_files_) {
      throw std::invalid_argument("DatasetStore: file id out of range");
    }
  }
  location_.assign(static_cast<std::size_t>(num_files_), FileLocation{});
}

void DatasetStore::place_uniform(const std::vector<FileLocation>& locations) {
  if (locations.empty()) {
    throw std::invalid_argument("DatasetStore: no locations");
  }
  for (int f = 0; f < num_files_; ++f) {
    location_[static_cast<std::size_t>(f)] =
        locations[static_cast<std::size_t>(f) % locations.size()];
  }
}

void DatasetStore::move_fraction(const std::vector<int>& from_hosts,
                                 const std::vector<FileLocation>& to_locations,
                                 double fraction) {
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument("DatasetStore: fraction must be in [0, 1]");
  }
  if (to_locations.empty()) {
    throw std::invalid_argument("DatasetStore: no target locations");
  }
  std::vector<int> candidates;
  for (int f = 0; f < num_files_; ++f) {
    const int host = location_[static_cast<std::size_t>(f)].host;
    if (std::find(from_hosts.begin(), from_hosts.end(), host) != from_hosts.end()) {
      candidates.push_back(f);
    }
  }
  const auto n_move = static_cast<std::size_t>(
      std::llround(fraction * static_cast<double>(candidates.size())));
  for (std::size_t i = 0; i < n_move; ++i) {
    location_[static_cast<std::size_t>(candidates[i])] =
        to_locations[i % to_locations.size()];
  }
}

std::vector<ChunkRef> DatasetStore::chunks_on_host(int host) const {
  std::vector<ChunkRef> refs;
  for (int c = 0; c < layout_.num_chunks(); ++c) {
    const int f = file_of_chunk_[static_cast<std::size_t>(c)];
    const auto& loc = location_[static_cast<std::size_t>(f)];
    if (loc.host != host) continue;
    refs.push_back(ChunkRef{c, f, loc.disk,
                            layout_.chunk_bytes(c, floats_per_point_)});
  }
  return refs;
}

std::uint64_t DatasetStore::bytes_on_host(int host) const {
  std::uint64_t total = 0;
  for (const auto& ref : chunks_on_host(host)) total += ref.bytes;
  return total;
}

std::vector<int> DatasetStore::data_hosts() const {
  std::vector<int> hosts;
  for (const auto& loc : location_) {
    if (loc.host >= 0 &&
        std::find(hosts.begin(), hosts.end(), loc.host) == hosts.end()) {
      hosts.push_back(loc.host);
    }
  }
  std::sort(hosts.begin(), hosts.end());
  return hosts;
}

}  // namespace dc::data
