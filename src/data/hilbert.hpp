#pragma once

#include <array>
#include <cstdint>

namespace dc::data {

/// 3-D Hilbert space-filling curve (Skilling's transpose algorithm).
///
/// The paper declusters dataset chunks across files with a Hilbert
/// curve-based algorithm [Faloutsos & Bhagwat 1993]; chunks close on the
/// curve are close in space, so striding along the curve spreads any query
/// box across all files.
///
/// Coordinates must be < 2^bits; bits <= 20 keeps the index in 60 bits.
[[nodiscard]] std::uint64_t hilbert_index(std::array<std::uint32_t, 3> coords,
                                          int bits);

/// Inverse of hilbert_index.
[[nodiscard]] std::array<std::uint32_t, 3> hilbert_coords(std::uint64_t index,
                                                          int bits);

}  // namespace dc::data
