#include "data/volume.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace dc::data {

ChunkLayout::ChunkLayout(GridDims grid, int cx, int cy, int cz)
    : grid_(grid), cx_(cx), cy_(cy), cz_(cz) {
  if (grid.nx <= 0 || grid.ny <= 0 || grid.nz <= 0) {
    throw std::invalid_argument("ChunkLayout: grid dims must be positive");
  }
  if (cx <= 0 || cy <= 0 || cz <= 0) {
    throw std::invalid_argument("ChunkLayout: chunk counts must be positive");
  }
  if (cx > grid.nx || cy > grid.ny || cz > grid.nz) {
    throw std::invalid_argument("ChunkLayout: more chunks than cells");
  }
}

std::array<int, 3> ChunkLayout::chunk_coords(int chunk) const {
  if (chunk < 0 || chunk >= num_chunks()) {
    throw std::out_of_range("ChunkLayout: bad chunk id");
  }
  return {chunk % cx_, (chunk / cx_) % cy_, chunk / (cx_ * cy_)};
}

int ChunkLayout::chunk_id(std::array<int, 3> c) const {
  if (c[0] < 0 || c[0] >= cx_ || c[1] < 0 || c[1] >= cy_ || c[2] < 0 ||
      c[2] >= cz_) {
    throw std::out_of_range("ChunkLayout: bad chunk coords");
  }
  return c[0] + cx_ * (c[1] + cy_ * c[2]);
}

CellBox ChunkLayout::chunk_box(int chunk) const {
  const auto c = chunk_coords(chunk);
  // Split cells as evenly as possible: the first (n % k) chunks get one
  // extra cell.
  auto split = [](int n, int k, int i) -> std::pair<int, int> {
    const int base = n / k;
    const int extra = n % k;
    const int lo = i * base + std::min(i, extra);
    const int len = base + (i < extra ? 1 : 0);
    return {lo, lo + len};
  };
  CellBox box;
  const auto [x0, x1] = split(grid_.nx, cx_, c[0]);
  const auto [y0, y1] = split(grid_.ny, cy_, c[1]);
  const auto [z0, z1] = split(grid_.nz, cz_, c[2]);
  box.lo = {x0, y0, z0};
  box.hi = {x1, y1, z1};
  return box;
}

std::uint64_t ChunkLayout::chunk_bytes(int chunk, int floats_per_point) const {
  const auto box = chunk_box(chunk);
  return static_cast<std::uint64_t>(box.points()) * sizeof(float) *
         static_cast<std::uint64_t>(floats_per_point);
}

std::uint64_t ChunkLayout::total_bytes(int floats_per_point) const {
  std::uint64_t total = 0;
  for (int c = 0; c < num_chunks(); ++c) {
    total += chunk_bytes(c, floats_per_point);
  }
  return total;
}

}  // namespace dc::data
