#pragma once

#include <vector>

#include "data/volume.hpp"

namespace dc::data {

/// Hilbert curve-based declustering [Faloutsos & Bhagwat 1993], as used in
/// the paper: chunks are ordered along the 3-D Hilbert curve through their
/// chunk coordinates and dealt round-robin into `num_files` files. Any
/// contiguous spatial region then spreads nearly evenly over all files,
/// which in turn spread over all disks.
///
/// Returns file id per chunk (size == layout.num_chunks()).
[[nodiscard]] std::vector<int> hilbert_decluster(const ChunkLayout& layout,
                                                 int num_files);

/// Hilbert rank per chunk (the permutation underlying the declustering);
/// exposed for tests and for the ADR partitioner.
[[nodiscard]] std::vector<int> hilbert_ranks(const ChunkLayout& layout);

}  // namespace dc::data
