#include "data/decluster.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "data/hilbert.hpp"

namespace dc::data {

std::vector<int> hilbert_ranks(const ChunkLayout& layout) {
  const int n = layout.num_chunks();
  // Enough bits to cover the largest chunk-coordinate axis.
  int bits = 1;
  const int max_dim = std::max(
      {layout.chunks_x(), layout.chunks_y(), layout.chunks_z()});
  while ((1 << bits) < max_dim) ++bits;

  std::vector<std::uint64_t> keys(static_cast<std::size_t>(n));
  for (int c = 0; c < n; ++c) {
    const auto coords = layout.chunk_coords(c);
    keys[static_cast<std::size_t>(c)] =
        hilbert_index({static_cast<std::uint32_t>(coords[0]),
                       static_cast<std::uint32_t>(coords[1]),
                       static_cast<std::uint32_t>(coords[2])},
                      bits);
  }
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return keys[static_cast<std::size_t>(a)] < keys[static_cast<std::size_t>(b)];
  });
  std::vector<int> rank(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    rank[static_cast<std::size_t>(order[static_cast<std::size_t>(r)])] = r;
  }
  return rank;
}

std::vector<int> hilbert_decluster(const ChunkLayout& layout, int num_files) {
  if (num_files <= 0) {
    throw std::invalid_argument("hilbert_decluster: num_files must be positive");
  }
  const auto rank = hilbert_ranks(layout);
  std::vector<int> file(rank.size());
  for (std::size_t c = 0; c < rank.size(); ++c) {
    file[c] = rank[c] % num_files;
  }
  return file;
}

}  // namespace dc::data
